package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bolted/internal/obs"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrRecordTooLarge rejects appends whose encoded payload exceeds maxFrame.
var ErrRecordTooLarge = errors.New("store: record exceeds frame limit")

const (
	walName  = "wal.log"
	snapName = "snapshot.json"

	// frameHeader is [4-byte little-endian payload length][4-byte CRC32-C of
	// the payload]. The CRC lets open-time recovery distinguish a torn tail
	// (truncate and continue) from silent corruption (also truncate — every
	// byte after the last valid frame is untrusted).
	frameHeader = 8
	maxFrame    = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// File is the durable Store: an fsync'd append-only WAL plus an atomically
// replaced snapshot file, both inside a single directory.
//
// Append uses group commit: the frame is written under the write lock, then
// the caller joins a shared fsync that covers every frame written before it
// started. Concurrent appenders therefore amortize one fsync instead of
// paying one each, while each still returns only after its own frame is
// durable.
type File struct {
	dir string

	mu      sync.Mutex // guards f, wrote, closed, and structural ops
	f       *os.File
	wrote   uint64 // frames fully written to the OS
	closed  bool
	syncMu  sync.Mutex // serializes fsyncs; never held with mu
	durable uint64     // frames covered by the last completed fsync

	// Pre-resolved instruments (fileMetrics zero value when no registry
	// is attached; obs instruments are nil-safe).
	metrics fileMetrics
}

// fileMetrics is the WAL's instrument set.
type fileMetrics struct {
	appendSeconds *obs.Histogram // frame write, excluding the group fsync
	fsyncSeconds  *obs.Histogram // the shared fsync itself
	groupFrames   *obs.Histogram // frames committed per fsync
	snapSeconds   *obs.Histogram // Compact end to end
	snapBytes     *obs.Histogram // encoded snapshot size
}

// SetMetrics attaches an observability registry (nil detaches). Call
// before the store sees traffic; instruments are resolved once here.
func (s *File) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics = fileMetrics{}
		return
	}
	s.metrics = fileMetrics{
		appendSeconds: reg.Histogram("bolted_wal_append_seconds", "WAL frame write latency (buffered; excludes the group fsync).", nil),
		fsyncSeconds:  reg.Histogram("bolted_wal_fsync_seconds", "WAL group-commit fsync latency.", nil),
		groupFrames:   reg.Histogram("bolted_wal_group_commit_frames", "Frames made durable per group-commit fsync.", obs.DefCountBuckets),
		snapSeconds:   reg.Histogram("bolted_snapshot_seconds", "Snapshot compaction latency (write, rename, WAL truncate).", nil),
		snapBytes:     reg.Histogram("bolted_snapshot_bytes", "Encoded snapshot size.", obs.DefSizeBuckets),
	}
}

// Open creates dir if needed, recovers the WAL tail (truncating after the
// last valid frame), and returns a store ready for Load and Append.
func Open(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st := &File{dir: dir, f: f}
	n, valid, err := scanWAL(f, nil)
	if err != nil {
		f.Close()
		return nil, err
	}
	if info, serr := f.Stat(); serr == nil && info.Size() > valid {
		// Torn or corrupt tail from a crash mid-append: everything after the
		// last whole frame is garbage. Cut it so new frames start clean.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: sync after truncate: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek wal end: %w", err)
	}
	st.wrote = n
	st.durable = n
	return st, nil
}

// scanWAL walks frames from the start of f, calling fn (if non-nil) for each
// decoded record. It returns the frame count and the byte offset just past
// the last valid frame.
func scanWAL(f *os.File, fn func(Record) error) (frames uint64, validEnd int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("store: seek wal start: %w", err)
	}
	var hdr [frameHeader]byte
	var off int64
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// EOF (clean end) or a partial header (torn tail): stop here.
			return frames, off, nil
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > maxFrame {
			return frames, off, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			return frames, off, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return frames, off, nil // corrupt frame: distrust it and the rest
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return frames, off, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return frames, off, err
			}
		}
		frames++
		off += int64(frameHeader) + int64(size)
	}
}

func (s *File) Load() (*Snapshot, []Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	var snap *Snapshot
	raw, err := os.ReadFile(filepath.Join(s.dir, snapName))
	switch {
	case err == nil:
		snap = new(Snapshot)
		if err := json.Unmarshal(raw, snap); err != nil {
			// A half-written snapshot can't happen (tmp+rename), so a broken
			// one means external damage. Fail loudly rather than silently
			// recovering to an empty control plane over live hardware.
			return nil, nil, fmt.Errorf("store: corrupt snapshot: %w", err)
		}
	case os.IsNotExist(err):
	default:
		return nil, nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	var recs []Record
	if _, _, err := scanWAL(s.f, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return nil, nil, fmt.Errorf("store: seek wal end: %w", err)
	}
	return snap, recs, nil
}

func (s *File) Append(rec Record) error {
	target, err := s.write(rec)
	if err != nil {
		return err
	}
	return s.syncTo(target)
}

// AppendBuffered writes the frame into the log (visible to Load and to
// open-time recovery) but returns before it is fsync'd: the next Append,
// Sync, or Compact is its commit point.
func (s *File) AppendBuffered(rec Record) error {
	_, err := s.write(rec)
	return err
}

// Sync blocks until every frame written so far is durable.
func (s *File) Sync() error {
	s.mu.Lock()
	target := s.wrote
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return s.syncTo(target)
}

// write frames and appends one record under the write lock, returning the
// frame count the caller must sync to for durability.
func (s *File) write(rec Record) (uint64, error) {
	t0 := time.Now()
	defer s.metrics.appendSeconds.ObserveSince(t0)
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > maxFrame {
		return 0, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	start, err := s.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, fmt.Errorf("store: wal offset: %w", err)
	}
	if _, err := s.f.Write(frame); err != nil {
		// Undo a partial write so the in-memory offset and the on-disk tail
		// stay framed; if the truncate also fails, open-time CRC recovery
		// still cuts the torn frame.
		s.f.Truncate(start)
		s.f.Seek(start, io.SeekStart)
		return 0, fmt.Errorf("store: append: %w", err)
	}
	s.wrote++
	return s.wrote, nil
}

// syncTo returns once every frame up to target is fsync'd, issuing at most
// one fsync of its own and otherwise riding a concurrent one.
func (s *File) syncTo(target uint64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.durable >= target {
		return nil
	}
	s.mu.Lock()
	covered := s.wrote
	f, closed := s.f, s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	t0 := time.Now()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	s.metrics.fsyncSeconds.ObserveSince(t0)
	if covered > s.durable {
		// The batch size of this group commit: every frame written since
		// the last completed fsync rode this one.
		s.metrics.groupFrames.Observe(float64(covered - s.durable))
		s.durable = covered
	}
	return nil
}

func (s *File) Compact(snap *Snapshot) error {
	t0 := time.Now()
	defer s.metrics.snapSeconds.ObserveSince(t0)
	raw, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	s.metrics.snapBytes.Observe(float64(len(raw)))
	// Lock order everywhere is syncMu before mu (syncTo does the same), so
	// Compact's reset of the durable watermark can't deadlock with an
	// in-flight group commit.
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmp := filepath.Join(s.dir, snapName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot tmp: %w", err)
	}
	if _, err := tf.Write(raw); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	// The snapshot now owns all prior history; drop the log it replaced.
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync wal: %w", err)
	}
	s.wrote = 0
	s.durable = 0
	return nil
}

func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed file survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
