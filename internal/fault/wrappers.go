package fault

import (
	"context"
	"crypto/ecdh"
	"crypto/ecdsa"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/ima"
	"bolted/internal/keylime"
	"bolted/internal/tpm"
)

// Backend names the injector keys profiles and stats by. The store is
// faulted separately via store.Faulty, which already existed.
const (
	BackendHIL       = "hil"
	BackendBMI       = "bmi"
	BackendDriver    = "driver"
	BackendRegistrar = "registrar"
)

// Backends lists every backend the injector can wrap, in sweep order.
var Backends = []string{BackendHIL, BackendBMI, BackendDriver, BackendRegistrar}

// WrapHIL returns a faulting decorator around a HIL service. Install it
// by reassigning Cloud.HIL before enabling resilience, so breakers and
// retries observe the injected faults.
func WrapHIL(inner core.HILService, inj *Injector) core.HILService {
	return &faultHIL{inner: inner, inj: inj}
}

// WrapBMI returns a faulting decorator around a BMI service.
func WrapBMI(inner core.BMIService, inj *Injector) core.BMIService {
	return &faultBMI{inner: inner, inj: inj}
}

// WrapDriver returns a faulting decorator around a node driver.
func WrapDriver(inner core.NodeDriver, inj *Injector) core.NodeDriver {
	return &faultDriver{inner: inner, inj: inj}
}

// WrapRegistrar returns a faulting decorator around a registrar
// connection. Registrar calls carry no context; injected hangs on it
// release only when the injector closes.
func WrapRegistrar(inner keylime.RegistrarConn, inj *Injector) keylime.RegistrarConn {
	return &faultRegistrar{inner: inner, inj: inj}
}

type faultHIL struct {
	inner core.HILService
	inj   *Injector
}

func (f *faultHIL) CreateProject(name string) error {
	return f.inj.do(context.Background(), BackendHIL, "CreateProject", name, func() error { return f.inner.CreateProject(name) })
}

func (f *faultHIL) DeleteProject(name string) error {
	return f.inj.do(context.Background(), BackendHIL, "DeleteProject", name, func() error { return f.inner.DeleteProject(name) })
}

func (f *faultHIL) FreeNodes() ([]string, error) {
	return do1(f.inj, context.Background(), BackendHIL, "FreeNodes", "", f.inner.FreeNodes)
}

func (f *faultHIL) AllocateNode(ctx context.Context, project, node string) error {
	return f.inj.do(ctx, BackendHIL, "AllocateNode", node, func() error { return f.inner.AllocateNode(ctx, project, node) })
}

func (f *faultHIL) AllocateAnyNode(ctx context.Context, project string) (string, error) {
	return do1(f.inj, ctx, BackendHIL, "AllocateAnyNode", project, func() (string, error) { return f.inner.AllocateAnyNode(ctx, project) })
}

func (f *faultHIL) TransferNode(ctx context.Context, from, node, to string) error {
	return f.inj.do(ctx, BackendHIL, "TransferNode", node, func() error { return f.inner.TransferNode(ctx, from, node, to) })
}

func (f *faultHIL) FreeNode(ctx context.Context, project, node string) error {
	return f.inj.do(ctx, BackendHIL, "FreeNode", node, func() error { return f.inner.FreeNode(ctx, project, node) })
}

func (f *faultHIL) CreateNetwork(ctx context.Context, project, name string) error {
	return f.inj.do(ctx, BackendHIL, "CreateNetwork", name, func() error { return f.inner.CreateNetwork(ctx, project, name) })
}

func (f *faultHIL) DeleteNetwork(ctx context.Context, project, name string) error {
	return f.inj.do(ctx, BackendHIL, "DeleteNetwork", name, func() error { return f.inner.DeleteNetwork(ctx, project, name) })
}

func (f *faultHIL) ConnectNode(ctx context.Context, project, node, network string) error {
	return f.inj.do(ctx, BackendHIL, "ConnectNode", node+"/"+network, func() error { return f.inner.ConnectNode(ctx, project, node, network) })
}

func (f *faultHIL) DetachNode(ctx context.Context, project, node, network string) error {
	return f.inj.do(ctx, BackendHIL, "DetachNode", node+"/"+network, func() error { return f.inner.DetachNode(ctx, project, node, network) })
}

func (f *faultHIL) ConnectServicePort(port, publicNet string) error {
	return f.inj.do(context.Background(), BackendHIL, "ConnectServicePort", port, func() error { return f.inner.ConnectServicePort(port, publicNet) })
}

func (f *faultHIL) PowerOn(ctx context.Context, project, node string) error {
	return f.inj.do(ctx, BackendHIL, "PowerOn", node, func() error { return f.inner.PowerOn(ctx, project, node) })
}

func (f *faultHIL) PowerOff(ctx context.Context, project, node string) error {
	return f.inj.do(ctx, BackendHIL, "PowerOff", node, func() error { return f.inner.PowerOff(ctx, project, node) })
}

func (f *faultHIL) PowerCycle(ctx context.Context, project, node string) error {
	return f.inj.do(ctx, BackendHIL, "PowerCycle", node, func() error { return f.inner.PowerCycle(ctx, project, node) })
}

func (f *faultHIL) NodeMetadata(node string) (map[string]string, error) {
	return do1(f.inj, context.Background(), BackendHIL, "NodeMetadata", node, func() (map[string]string, error) { return f.inner.NodeMetadata(node) })
}

func (f *faultHIL) NodeOwner(node string) (string, error) {
	return do1(f.inj, context.Background(), BackendHIL, "NodeOwner", node, func() (string, error) { return f.inner.NodeOwner(node) })
}

func (f *faultHIL) NodePort(node string) (string, error) {
	return do1(f.inj, context.Background(), BackendHIL, "NodePort", node, func() (string, error) { return f.inner.NodePort(node) })
}

type faultBMI struct {
	inner core.BMIService
	inj   *Injector
}

func (f *faultBMI) CreateImage(ctx context.Context, name string, size int64) (*bmi.Image, error) {
	return do1(f.inj, ctx, BackendBMI, "CreateImage", name, func() (*bmi.Image, error) { return f.inner.CreateImage(ctx, name, size) })
}

func (f *faultBMI) CreateOSImage(name string, spec bmi.OSImageSpec) (*bmi.Image, error) {
	return do1(f.inj, context.Background(), BackendBMI, "CreateOSImage", name, func() (*bmi.Image, error) { return f.inner.CreateOSImage(name, spec) })
}

func (f *faultBMI) CloneImage(ctx context.Context, src, dst string) (*bmi.Image, error) {
	return do1(f.inj, ctx, BackendBMI, "CloneImage", dst, func() (*bmi.Image, error) { return f.inner.CloneImage(ctx, src, dst) })
}

func (f *faultBMI) SnapshotImage(ctx context.Context, src, snap string) (*bmi.Image, error) {
	return do1(f.inj, ctx, BackendBMI, "SnapshotImage", snap, func() (*bmi.Image, error) { return f.inner.SnapshotImage(ctx, src, snap) })
}

func (f *faultBMI) DeleteImage(ctx context.Context, name string) error {
	return f.inj.do(ctx, BackendBMI, "DeleteImage", name, func() error { return f.inner.DeleteImage(ctx, name) })
}

func (f *faultBMI) GetImage(name string) (*bmi.Image, error) {
	return do1(f.inj, context.Background(), BackendBMI, "GetImage", name, func() (*bmi.Image, error) { return f.inner.GetImage(name) })
}

func (f *faultBMI) ListImages() ([]string, error) {
	return do1(f.inj, context.Background(), BackendBMI, "ListImages", "", f.inner.ListImages)
}

func (f *faultBMI) ExtractBootInfo(ctx context.Context, image string) (*bmi.BootInfo, error) {
	return do1(f.inj, ctx, BackendBMI, "ExtractBootInfo", image, func() (*bmi.BootInfo, error) { return f.inner.ExtractBootInfo(ctx, image) })
}

func (f *faultBMI) ExportForBoot(ctx context.Context, node, image string, cow bool) (*bmi.Export, error) {
	return do1(f.inj, ctx, BackendBMI, "ExportForBoot", node, func() (*bmi.Export, error) { return f.inner.ExportForBoot(ctx, node, image, cow) })
}

func (f *faultBMI) Unexport(ctx context.Context, node, saveAs string) error {
	return f.inj.do(ctx, BackendBMI, "Unexport", node, func() error { return f.inner.Unexport(ctx, node, saveAs) })
}

type faultDriver struct {
	inner core.NodeDriver
	inj   *Injector
}

func (f *faultDriver) Boot(ctx context.Context, node string) (keylime.AgentConn, error) {
	return do1(f.inj, ctx, BackendDriver, "Boot", node, func() (keylime.AgentConn, error) { return f.inner.Boot(ctx, node) })
}

func (f *faultDriver) ExpectedBootPCRs(ctx context.Context, node string) (map[int][]tpm.Digest, error) {
	return do1(f.inj, ctx, BackendDriver, "ExpectedBootPCRs", node, func() (map[int][]tpm.Digest, error) { return f.inner.ExpectedBootPCRs(ctx, node) })
}

func (f *faultDriver) KexecAttested(ctx context.Context, node, kernelID string) error {
	return f.inj.do(ctx, BackendDriver, "KexecAttested", node, func() error { return f.inner.KexecAttested(ctx, node, kernelID) })
}

func (f *faultDriver) Kexec(ctx context.Context, node, kernelID string, kernel, initrd []byte) error {
	return f.inj.do(ctx, BackendDriver, "Kexec", node, func() error { return f.inner.Kexec(ctx, node, kernelID, kernel, initrd) })
}

func (f *faultDriver) StartIMA(ctx context.Context, node string) (*ima.Collector, error) {
	return do1(f.inj, ctx, BackendDriver, "StartIMA", node, func() (*ima.Collector, error) { return f.inner.StartIMA(ctx, node) })
}

func (f *faultDriver) StopAgent(ctx context.Context, node string) error {
	return f.inj.do(ctx, BackendDriver, "StopAgent", node, func() error { return f.inner.StopAgent(ctx, node) })
}

func (f *faultDriver) AddServicePort(ctx context.Context, name string) error {
	return f.inj.do(ctx, BackendDriver, "AddServicePort", name, func() error { return f.inner.AddServicePort(ctx, name) })
}

func (f *faultDriver) Reachable(ctx context.Context, portA, portB string) error {
	return f.inj.do(ctx, BackendDriver, "Reachable", portA+"/"+portB, func() error { return f.inner.Reachable(ctx, portA, portB) })
}

type faultRegistrar struct {
	inner keylime.RegistrarConn
	inj   *Injector
}

func (f *faultRegistrar) Register(uuid string, ekPub *ecdh.PublicKey, aikPub *ecdsa.PublicKey) (*tpm.CredentialBlob, error) {
	return do1(f.inj, context.Background(), BackendRegistrar, "Register", uuid, func() (*tpm.CredentialBlob, error) { return f.inner.Register(uuid, ekPub, aikPub) })
}

func (f *faultRegistrar) Activate(uuid string, proof []byte) error {
	return f.inj.do(context.Background(), BackendRegistrar, "Activate", uuid, func() error { return f.inner.Activate(uuid, proof) })
}

func (f *faultRegistrar) AIK(uuid string) (*ecdsa.PublicKey, error) {
	return do1(f.inj, context.Background(), BackendRegistrar, "AIK", uuid, func() (*ecdsa.PublicKey, error) { return f.inner.AIK(uuid) })
}

func (f *faultRegistrar) EK(uuid string) (*ecdh.PublicKey, error) {
	return do1(f.inj, context.Background(), BackendRegistrar, "EK", uuid, func() (*ecdh.PublicKey, error) { return f.inner.EK(uuid) })
}

// The decorators must satisfy the same narrow contracts they wrap.
var (
	_ core.HILService       = (*faultHIL)(nil)
	_ core.BMIService       = (*faultBMI)(nil)
	_ core.NodeDriver       = (*faultDriver)(nil)
	_ keylime.RegistrarConn = (*faultRegistrar)(nil)
)
