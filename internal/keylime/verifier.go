package keylime

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"bolted/internal/firmware"
	"bolted/internal/ima"
	"bolted/internal/tpm"
)

// ErrQuoteMismatch marks an attestation verdict failure: the node's
// quote verified cryptographically but a PCR value is outside the
// whitelist. It is a trust decision, not a service hiccup — resilience
// layers must treat it as fatal (reject immediately, never retry) and
// must not count it against service-health circuit breakers.
var ErrQuoteMismatch = errors.New("keylime: quote does not match whitelist")

// NodeStatus is the verifier's view of a monitored node.
type NodeStatus string

// Node statuses.
const (
	StatusPending  NodeStatus = "pending"  // added, not yet attested
	StatusVerified NodeStatus = "verified" // last check passed
	StatusFailed   NodeStatus = "failed"   // boot attestation failed
	StatusRevoked  NodeStatus = "revoked"  // runtime violation; keys revoked
)

// AgentConn is the verifier's and tenant's view of an agent: satisfied
// by *Agent in process and by *RemoteAgent over HTTP.
type AgentConn interface {
	UUID() string
	Quote(nonce []byte, sel []int, verifierPort string) (*tpm.Quote, error)
	IMAList() []ima.Entry
	ReceiveU(u []byte)
	ReceiveV(v, sealedPayload []byte)
}

// NodeConfig is everything the verifier needs to attest one node.
type NodeConfig struct {
	Agent AgentConn
	// V is the verifier's key share, released to the agent only after
	// boot attestation passes.
	V []byte
	// SealedPayload is delivered alongside V.
	SealedPayload []byte
	// PlatformPCRs maps PCR index to the set of acceptable values (the
	// whitelist). Every listed PCR must match one allowed value.
	PlatformPCRs map[int][]tpm.Digest
	// IMAWhitelist enables continuous attestation when non-nil.
	IMAWhitelist *ima.Whitelist
}

// RevocationEvent notifies enclave peers that a node's keys are revoked.
type RevocationEvent struct {
	UUID   string
	Reason string
	At     time.Time
}

type monitored struct {
	cfg      NodeConfig
	status   NodeStatus
	released bool
	stop     chan struct{}
	// loopDone is closed by the monitoring goroutine as it exits, so
	// StopMonitoring/RemoveNode can wait for the loop to be truly gone
	// rather than merely signalled.
	loopDone chan struct{}
	lastErr  error
}

// Verifier is the Keylime Cloud Verifier: it maintains whitelists,
// checks server integrity, and releases key shares. Deployable by the
// tenant (Charlie) or the provider (Bob).
type Verifier struct {
	registrar RegistrarConn
	port      string

	mu     sync.Mutex
	nodes  map[string]*monitored
	subs   map[int]func(RevocationEvent)
	subSeq int
}

// NewVerifier creates a verifier reachable on the given switch port.
// The registrar may be in-process or a RegistrarClient for a registrar
// elsewhere on the attestation network.
func NewVerifier(reg RegistrarConn, port string) *Verifier {
	return &Verifier{registrar: reg, port: port, nodes: make(map[string]*monitored)}
}

// Port returns the verifier's switch port.
func (v *Verifier) Port() string { return v.port }

// AddNode registers a node for attestation.
func (v *Verifier) AddNode(uuid string, cfg NodeConfig) error {
	if cfg.Agent == nil {
		return errors.New("keylime: node config needs an agent")
	}
	if len(cfg.PlatformPCRs) == 0 {
		return errors.New("keylime: node config needs a platform PCR whitelist")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.nodes[uuid]; ok {
		return fmt.Errorf("keylime: node %q already monitored", uuid)
	}
	v.nodes[uuid] = &monitored{cfg: cfg, status: StatusPending}
	return nil
}

// RemoveNode stops tracking a node (tenant released it). It does not
// return until the node's monitoring goroutine, if any, has exited.
func (v *Verifier) RemoveNode(uuid string) {
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	if ok {
		delete(v.nodes, uuid)
	}
	v.mu.Unlock()
	if ok && m.stop != nil {
		close(m.stop)
		<-m.loopDone
	}
}

// Status reports a node's attestation state.
func (v *Verifier) Status(uuid string) (NodeStatus, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.nodes[uuid]
	if !ok {
		return "", fmt.Errorf("keylime: node %q not monitored", uuid)
	}
	return m.status, nil
}

// LastError returns the most recent check failure for a node.
func (v *Verifier) LastError(uuid string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok := v.nodes[uuid]; ok {
		return m.lastErr
	}
	return nil
}

func nonce() []byte {
	n := make([]byte, 20)
	if _, err := io.ReadFull(rand.Reader, n); err != nil {
		panic("keylime: entropy source failed: " + err.Error())
	}
	return n
}

// AttestBoot performs the airlock-phase attestation: quote over the
// boot PCRs, verified against the registrar-certified AIK and the
// platform whitelist. On first success the verifier releases V and the
// sealed payload to the agent.
func (v *Verifier) AttestBoot(ctx context.Context, uuid string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("keylime: %w", err)
	}
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("keylime: node %q not monitored", uuid)
	}
	err := v.attestBoot(ctx, uuid, m)
	v.mu.Lock()
	defer v.mu.Unlock()
	if err != nil {
		m.status = StatusFailed
		m.lastErr = err
		return err
	}
	m.status = StatusVerified
	m.lastErr = nil
	if !m.released {
		m.cfg.Agent.ReceiveV(m.cfg.V, m.cfg.SealedPayload)
		m.released = true
	}
	return nil
}

func (v *Verifier) attestBoot(ctx context.Context, uuid string, m *monitored) error {
	return QuoteAgainstWhitelist(ctx, v.registrar, m.cfg.Agent, v.port, m.cfg.PlatformPCRs)
}

// QuoteAgainstWhitelist runs one fresh-nonce quote over the whitelisted
// PCRs and verifies it end to end: registrar-certified AIK, signature,
// and every quoted value against its allowed set. It is the attestation
// primitive shared by the verifier's boot attestation and the warm
// pool's pre-attest (which checks a standby against the provider
// whitelist without provisioning any tenant payload).
func QuoteAgainstWhitelist(ctx context.Context, reg RegistrarConn, agent AgentConn, verifierPort string, whitelist map[int][]tpm.Digest) error {
	aik, err := reg.AIK(agent.UUID())
	if err != nil {
		return fmt.Errorf("keylime: no certified AIK: %w", err)
	}
	var sel []int
	for pcr := range whitelist {
		sel = append(sel, pcr)
	}
	sort.Ints(sel)
	n := nonce()
	q, err := agent.Quote(n, sel, verifierPort)
	if err != nil {
		return err
	}
	// The quote round trip is the slow step; honor a cancellation that
	// raced it before committing the verdict.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("keylime: %w", err)
	}
	if err := tpm.VerifyQuote(aik, q, n); err != nil {
		return err
	}
	for i, pcr := range q.PCRSel {
		allowed := whitelist[pcr]
		ok := false
		for _, d := range allowed {
			if q.PCRValues[i] == d {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: PCR %d value %x not in whitelist (firmware compromised or unknown)", ErrQuoteMismatch, pcr, q.PCRValues[i][:8])
		}
	}
	return nil
}

// CheckIMA performs one continuous-attestation round: fetch the node's
// IMA measurement list and a quote over the IMA PCR, verify the list
// is anchored in the TPM (replay matches the quoted aggregate), then
// match every measurement against the whitelist. Any violation revokes
// the node.
func (v *Verifier) CheckIMA(uuid string) ([]ima.Violation, error) {
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	v.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("keylime: node %q not monitored", uuid)
	}
	if m.cfg.IMAWhitelist == nil {
		return nil, fmt.Errorf("keylime: node %q has no IMA whitelist (continuous attestation disabled)", uuid)
	}
	aik, err := v.registrar.AIK(uuid)
	if err != nil {
		return nil, err
	}
	n := nonce()
	// Fetch list first, then the quote: under concurrent measurement
	// the quote may cover MORE than the list; the verifier accepts a
	// list that is a prefix-consistent explanation produced before the
	// quote. For simplicity we retry once on mismatch, which converges
	// when the node quiesces; persistent mismatch is a violation
	// (list tampering).
	for attempt := 0; ; attempt++ {
		list := m.cfg.Agent.IMAList()
		q, err := m.cfg.Agent.Quote(n, []int{ima.PCR}, v.port)
		if err != nil {
			return nil, err
		}
		if err := tpm.VerifyQuote(aik, q, n); err != nil {
			return nil, err
		}
		if ima.ReplayAggregate(list) != q.PCRValues[0] {
			if attempt < 3 {
				continue // racing measurements; re-fetch
			}
			v.Revoke(uuid, "IMA list does not match TPM aggregate (tampered list)")
			return nil, errors.New("keylime: IMA list does not match quoted PCR")
		}
		violations := m.cfg.IMAWhitelist.Check(list)
		if len(violations) > 0 {
			v.Revoke(uuid, violations[0].String())
		}
		return violations, nil
	}
}

// BootPCRSelection is the default whitelist PCR set for airlock
// attestation.
func BootPCRSelection() []int {
	return []int{firmware.PCRPlatform, firmware.PCRBootloader}
}

// Subscribe registers a revocation listener (enclave peers use this to
// drop a banned node's IPsec SAs; the runtime attestation guard uses it
// to drive automated quarantine). The returned func unsubscribes.
func (v *Verifier) Subscribe(fn func(RevocationEvent)) (cancel func()) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.subs == nil {
		v.subs = make(map[int]func(RevocationEvent))
	}
	id := v.subSeq
	v.subSeq++
	v.subs[id] = fn
	return func() {
		v.mu.Lock()
		defer v.mu.Unlock()
		delete(v.subs, id)
	}
}

// Revoke marks a node compromised and fans the event out to all
// subscribers synchronously — the paper measures detection-to-ban at
// about 3 seconds including IPsec teardown on every peer.
func (v *Verifier) Revoke(uuid, reason string) {
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	if ok {
		if m.status == StatusRevoked {
			v.mu.Unlock()
			return
		}
		m.status = StatusRevoked
		m.lastErr = errors.New("revoked: " + reason)
	}
	subs := make([]func(RevocationEvent), 0, len(v.subs))
	for _, fn := range v.subs {
		subs = append(subs, fn)
	}
	v.mu.Unlock()
	ev := RevocationEvent{UUID: uuid, Reason: reason, At: time.Now()}
	for _, fn := range subs {
		fn(ev)
	}
}

// StartMonitoring launches the continuous-attestation loop for a node
// at the given interval. It stops automatically on revocation or
// RemoveNode/StopMonitoring.
func (v *Verifier) StartMonitoring(uuid string, interval time.Duration) error {
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	if !ok {
		v.mu.Unlock()
		return fmt.Errorf("keylime: node %q not monitored", uuid)
	}
	if m.stop != nil {
		v.mu.Unlock()
		return fmt.Errorf("keylime: node %q already being monitored", uuid)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.stop, m.loopDone = stop, done
	v.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				violations, err := v.CheckIMA(uuid)
				if err != nil || len(violations) > 0 {
					return // revoked or unreachable; loop ends
				}
			}
		}
	}()
	return nil
}

// StopMonitoring halts a node's continuous-attestation loop and waits
// for its goroutine to exit, so no check is in flight after the call —
// a later StartMonitoring can never race a stale ticker loop.
func (v *Verifier) StopMonitoring(uuid string) {
	v.mu.Lock()
	m, ok := v.nodes[uuid]
	var stop, done chan struct{}
	if ok && m.stop != nil {
		stop, done = m.stop, m.loopDone
		m.stop, m.loopDone = nil, nil
	}
	v.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
