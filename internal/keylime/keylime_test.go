package keylime

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"bolted/internal/firmware"
	"bolted/internal/ima"
	"bolted/internal/netsim"
	"bolted/internal/tpm"
)

var heads = firmware.BuildLinuxBoot("heads-v1", []byte("linuxboot source v1"))

// rig is a minimal airlock: one node, registrar+verifier on the
// attestation network, everything wired through a fabric.
type rig struct {
	fabric   *netsim.Fabric
	machine  *firmware.Machine
	agent    *Agent
	reg      *Registrar
	verifier *Verifier
	tenant   *Tenant
}

const (
	regPort = "svc-registrar"
	cvPort  = "svc-verifier"
)

func newRig(t testing.TB) *rig {
	t.Helper()
	fabric, err := netsim.NewFabric(100, 199)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"node-port", regPort, cvPort} {
		if _, err := fabric.AddPort(p); err != nil {
			t.Fatal(err)
		}
	}
	// Airlock VLAN shared by node + attestation services.
	v, err := fabric.AllocateVLAN("airlock")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"node-port", regPort, cvPort} {
		if err := fabric.Attach(p, v); err != nil {
			t.Fatal(err)
		}
	}
	m, err := firmware.NewMachine("node1", "node-port", firmware.NewLinuxBoot(heads, "m620"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PowerOn(); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistrar()
	verifier := NewVerifier(reg, cvPort)
	return &rig{
		fabric:   fabric,
		machine:  m,
		agent:    NewAgent("node1", m, fabric),
		reg:      reg,
		verifier: verifier,
		tenant:   NewTenant(verifier),
	}
}

func (r *rig) whitelist() map[int][]tpm.Digest {
	exp := firmware.ExpectedPCRs(r.machine.Firmware(), nil)
	return map[int][]tpm.Digest{
		firmware.PCRPlatform:   {exp[firmware.PCRPlatform]},
		firmware.PCRBootloader: {exp[firmware.PCRBootloader]},
	}
}

func (r *rig) spec() ProvisionSpec {
	return ProvisionSpec{
		Payload: &Payload{
			Kernel:     []byte("vmlinuz"),
			Initrd:     []byte("initrd"),
			Script:     "#!/bin/sh\nkexec",
			DiskKey:    bytes.Repeat([]byte{1}, 64),
			NetworkKey: bytes.Repeat([]byte{2}, 32),
		},
		PlatformPCRs: r.whitelist(),
		HILMetadata:  map[string]string{EKMetadataKey: EncodeEK(r.machine.TPM().EKPublic())},
	}
}

func TestKeySplitCombine(t *testing.T) {
	k := NewBootstrapKey()
	u, v, err := SplitKey(k)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(u, k) || bytes.Equal(v, k) {
		t.Fatal("a share equals the key")
	}
	got, err := CombineKey(u, v)
	if err != nil || !bytes.Equal(got, k) {
		t.Fatal("combine does not invert split")
	}
	if _, _, err := SplitKey([]byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := CombineKey(u, []byte("short")); err == nil {
		t.Fatal("short share accepted")
	}
}

func TestPayloadSealOpen(t *testing.T) {
	k := NewBootstrapKey()
	p := &Payload{
		Kernel:     []byte("kernel-bytes"),
		Initrd:     []byte("initrd-bytes"),
		Script:     "echo hello",
		DiskKey:    []byte("disk-key-64-bytes"),
		NetworkKey: []byte("net-key"),
	}
	sealed, err := SealPayload(k, p)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, p.Kernel) {
		t.Fatal("payload kernel visible in sealed blob")
	}
	got, err := OpenPayload(k, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Kernel, p.Kernel) || got.Script != p.Script ||
		!bytes.Equal(got.DiskKey, p.DiskKey) || !bytes.Equal(got.NetworkKey, p.NetworkKey) ||
		!bytes.Equal(got.Initrd, p.Initrd) {
		t.Fatalf("payload mismatch: %+v", got)
	}
	if _, err := OpenPayload(NewBootstrapKey(), sealed); err == nil {
		t.Fatal("wrong key opened payload")
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := OpenPayload(k, sealed); err == nil {
		t.Fatal("tampered payload opened")
	}
}

func TestRegistrationAndActivation(t *testing.T) {
	r := newRig(t)
	if err := r.agent.RegisterWith(context.Background(), r.reg, regPort); err != nil {
		t.Fatal(err)
	}
	aik, err := r.reg.AIK("node1")
	if err != nil {
		t.Fatal(err)
	}
	if !aik.Equal(r.machine.TPM().AIKPublic()) {
		t.Fatal("registrar certified a different AIK")
	}
	ek, err := r.reg.EK("node1")
	if err != nil || !ek.Equal(r.machine.TPM().EKPublic()) {
		t.Fatal("registrar stored a different EK")
	}
}

func TestAIKUnavailableBeforeActivation(t *testing.T) {
	r := newRig(t)
	// Register keys but never complete the activation proof.
	if _, err := r.reg.Register("node1", r.agent.EKPublic(), r.agent.AIKPublic()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.reg.AIK("node1"); err == nil {
		t.Fatal("unactivated AIK was certified")
	}
	if err := r.reg.Activate("node1", []byte("forged-proof")); err == nil {
		t.Fatal("forged activation proof accepted")
	}
	if err := r.reg.Activate("ghost", nil); err == nil {
		t.Fatal("activation of unknown agent accepted")
	}
}

func TestImposterCannotRegisterAsNode(t *testing.T) {
	r := newRig(t)
	// An imposter machine claims node1's identity but holds its own TPM:
	// it registers node1's EK (copied from public metadata) with its own
	// AIK. Credential activation must fail because the imposter's TPM
	// cannot decrypt a credential made for node1's EK.
	imposter, err := firmware.NewMachine("evil", "node-port", firmware.NewLinuxBoot(heads, "m620"))
	if err != nil {
		t.Fatal(err)
	}
	imposter.PowerOn()
	blob, err := r.reg.Register("node1", r.machine.TPM().EKPublic(), imposter.TPM().AIKPublic())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := imposter.TPM().ActivateCredential(blob); err == nil {
		t.Fatal("imposter activated credential for another TPM's EK")
	}
}

func TestFullProvisionFlow(t *testing.T) {
	r := newRig(t)
	if err := r.agent.RegisterWith(context.Background(), r.reg, regPort); err != nil {
		t.Fatal(err)
	}
	spec := r.spec()
	k, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec)
	if err != nil {
		t.Fatal(err)
	}
	status, _ := r.verifier.Status("node1")
	if status != StatusVerified {
		t.Fatalf("status = %s", status)
	}
	p, err := r.agent.Unwrap()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Kernel, spec.Payload.Kernel) || !bytes.Equal(p.DiskKey, spec.Payload.DiskKey) {
		t.Fatal("unwrapped payload mismatch")
	}
	if len(k) != KeySize {
		t.Fatal("tenant did not get the bootstrap key back")
	}
}

func TestUnwrapFailsBeforeAttestation(t *testing.T) {
	r := newRig(t)
	r.agent.RegisterWith(context.Background(), r.reg, regPort)
	r.agent.ReceiveU(bytes.Repeat([]byte{1}, KeySize))
	if _, err := r.agent.Unwrap(); err == nil {
		t.Fatal("unwrap succeeded with only U")
	}
}

func TestCompromisedFirmwareRejected(t *testing.T) {
	r := newRig(t)
	// The whitelist is computed from clean firmware, then the machine is
	// reflashed with an implant and rebooted.
	wl := r.whitelist()
	evil := firmware.BuildLinuxBoot("heads-v1", []byte("linuxboot source v1 IMPLANT"))
	r.machine.ReflashFirmware(firmware.NewLinuxBoot(evil, "m620"))
	r.machine.PowerCycle()
	if err := r.agent.RegisterWith(context.Background(), r.reg, regPort); err != nil {
		t.Fatal(err)
	}
	spec := r.spec()
	spec.PlatformPCRs = wl
	_, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec)
	if err == nil {
		t.Fatal("compromised firmware passed attestation")
	}
	if !strings.Contains(err.Error(), "whitelist") {
		t.Fatalf("unexpected error: %v", err)
	}
	if status, _ := r.verifier.Status("node1"); status != StatusFailed {
		t.Fatalf("status = %s, want failed", status)
	}
	// V was never released: the payload stays sealed.
	if _, err := r.agent.Unwrap(); err == nil {
		t.Fatal("agent unwrapped payload despite failed attestation")
	}
}

func TestServerSpoofingDetected(t *testing.T) {
	r := newRig(t)
	r.agent.RegisterWith(context.Background(), r.reg, regPort)
	spec := r.spec()
	// Provider metadata points at a different physical TPM.
	other, _ := firmware.NewMachine("other", "node-port", firmware.NewLinuxBoot(heads, "m620"))
	spec.HILMetadata = map[string]string{EKMetadataKey: EncodeEK(other.TPM().EKPublic())}
	if _, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec); err == nil {
		t.Fatal("EK mismatch not detected")
	}
	spec.HILMetadata = map[string]string{}
	if _, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec); err == nil {
		t.Fatal("missing EK metadata not detected")
	}
}

func TestIsolatedAgentCannotAttest(t *testing.T) {
	r := newRig(t)
	r.agent.RegisterWith(context.Background(), r.reg, regPort)
	// Quarantine the node: detach from all VLANs.
	if err := r.fabric.DetachAll("node-port"); err != nil {
		t.Fatal(err)
	}
	if err := r.agent.RegisterWith(context.Background(), r.reg, regPort); err == nil {
		t.Fatal("isolated agent reached registrar")
	}
	spec := r.spec()
	if _, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec); err == nil {
		t.Fatal("isolated agent passed attestation")
	}
}

// continuousRig extends the basic rig with a booted tenant OS: IMA
// collector attached, whitelist populated.
func continuousRig(t *testing.T) (*rig, *ima.Collector, *ima.Whitelist) {
	t.Helper()
	r := newRig(t)
	if err := r.agent.RegisterWith(context.Background(), r.reg, regPort); err != nil {
		t.Fatal(err)
	}
	wl := ima.NewWhitelist()
	wl.AllowContent("/usr/bin/spark", []byte("spark-binary"))
	wl.AllowContent("/etc/conf", []byte("config"))
	spec := r.spec()
	spec.IMAWhitelist = wl
	if _, err := r.tenant.Provision(context.Background(), r.reg, r.agent, spec); err != nil {
		t.Fatal(err)
	}
	col := ima.NewCollector(r.machine.TPM(), ima.StressPolicy)
	r.agent.AttachIMA(col)
	return r, col, wl
}

func TestContinuousAttestationClean(t *testing.T) {
	r, col, _ := continuousRig(t)
	col.Measure("/usr/bin/spark", []byte("spark-binary"), ima.HookExec, 0)
	col.Measure("/etc/conf", []byte("config"), ima.HookRead, 0)
	violations, err := r.verifier.CheckIMA("node1")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("clean node produced violations: %v", violations)
	}
	if status, _ := r.verifier.Status("node1"); status != StatusVerified {
		t.Fatalf("status = %s", status)
	}
}

func TestContinuousAttestationDetectsViolation(t *testing.T) {
	r, col, _ := continuousRig(t)
	var revoked []RevocationEvent
	r.verifier.Subscribe(func(ev RevocationEvent) { revoked = append(revoked, ev) })

	col.Measure("/usr/bin/spark", []byte("spark-binary"), ima.HookExec, 0)
	// The paper's §7.4 scenario: a script not present in the whitelist.
	col.Measure("/tmp/evil.sh", []byte("#!/bin/sh\ncurl evil"), ima.HookExec, 0)

	violations, err := r.verifier.CheckIMA("node1")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 {
		t.Fatalf("violations = %v", violations)
	}
	if status, _ := r.verifier.Status("node1"); status != StatusRevoked {
		t.Fatalf("status = %s, want revoked", status)
	}
	if len(revoked) != 1 || revoked[0].UUID != "node1" {
		t.Fatalf("revocation events = %v", revoked)
	}
	// Revocation is idempotent.
	r.verifier.Revoke("node1", "again")
	if len(revoked) != 1 {
		t.Fatal("duplicate revocation fanned out twice")
	}
}

func TestContinuousAttestationDetectsListTampering(t *testing.T) {
	r, col, _ := continuousRig(t)
	// Measure a bad file, then tamper: the agent hides its list (returns
	// empty) but cannot rewind PCR10.
	col.Measure("/tmp/evil.sh", []byte("evil"), ima.HookExec, 0)
	r.agent.AttachIMA(ima.NewCollector(r.machine.TPM(), ima.StressPolicy)) // fresh, empty list
	if _, err := r.verifier.CheckIMA("node1"); err == nil {
		t.Fatal("hidden IMA list not detected")
	}
	if status, _ := r.verifier.Status("node1"); status != StatusRevoked {
		t.Fatalf("status = %s, want revoked", status)
	}
}

func TestMonitoringLoopDetects(t *testing.T) {
	r, col, _ := continuousRig(t)
	detected := make(chan RevocationEvent, 1)
	r.verifier.Subscribe(func(ev RevocationEvent) {
		select {
		case detected <- ev:
		default:
		}
	})
	if err := r.verifier.StartMonitoring("node1", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.verifier.StartMonitoring("node1", time.Millisecond); err == nil {
		t.Fatal("double StartMonitoring accepted")
	}
	defer r.verifier.StopMonitoring("node1")

	// Let a few clean rounds pass, then inject the violation.
	time.Sleep(20 * time.Millisecond)
	col.Measure("/tmp/dropper", []byte("payload"), ima.HookExec, 0)
	select {
	case ev := <-detected:
		if ev.UUID != "node1" {
			t.Fatalf("revoked %q", ev.UUID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("monitoring loop did not detect violation within 2s (paper: <1s)")
	}
}

func TestVerifierNodeManagement(t *testing.T) {
	r := newRig(t)
	if err := r.verifier.AddNode("x", NodeConfig{}); err == nil {
		t.Fatal("config without agent accepted")
	}
	if err := r.verifier.AddNode("x", NodeConfig{Agent: r.agent}); err == nil {
		t.Fatal("config without whitelist accepted")
	}
	cfg := NodeConfig{Agent: r.agent, PlatformPCRs: r.whitelist()}
	if err := r.verifier.AddNode("node1", cfg); err != nil {
		t.Fatal(err)
	}
	if err := r.verifier.AddNode("node1", cfg); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if _, err := r.verifier.Status("ghost"); err == nil {
		t.Fatal("status of unknown node")
	}
	if err := r.verifier.AttestBoot(context.Background(), "ghost"); err == nil {
		t.Fatal("attestation of unknown node")
	}
	if _, err := r.verifier.CheckIMA("node1"); err == nil {
		t.Fatal("CheckIMA without whitelist accepted")
	}
	r.verifier.RemoveNode("node1")
	if _, err := r.verifier.Status("node1"); err == nil {
		t.Fatal("removed node still tracked")
	}
}

// TestStopMonitoringDeterministic: StopMonitoring must not return
// until the ticker goroutine is gone, so an immediate re-Start never
// races a stale loop and -race sees no leaked checks.
func TestStopMonitoringDeterministic(t *testing.T) {
	r, col, _ := continuousRig(t)
	col.Measure("/usr/bin/spark", []byte("spark-binary"), ima.HookExec, 0)
	for i := 0; i < 5; i++ {
		if err := r.verifier.StartMonitoring("node1", time.Millisecond); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		time.Sleep(3 * time.Millisecond)
		r.verifier.StopMonitoring("node1")
		// The loop is deterministically gone: restarting immediately
		// must always be accepted.
	}
	r.verifier.StopMonitoring("node1") // idempotent
	// RemoveNode after a self-terminating loop (revocation) must not
	// hang or double-close.
	if err := r.verifier.StartMonitoring("node1", time.Millisecond); err != nil {
		t.Fatal(err)
	}
	col.Measure("/tmp/evil", []byte("evil"), ima.HookExec, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if status, _ := r.verifier.Status("node1"); status == StatusRevoked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitoring loop never revoked the node")
		}
		time.Sleep(time.Millisecond)
	}
	r.verifier.RemoveNode("node1") // waits for the (already exiting) loop
	if _, err := r.verifier.Status("node1"); err == nil {
		t.Fatal("removed node still tracked")
	}
}

// TestSubscribeCancel: an unsubscribed listener must see no further
// revocations (the guard detach path relies on this).
func TestSubscribeCancel(t *testing.T) {
	r, _, _ := continuousRig(t)
	var got int
	cancel := r.verifier.Subscribe(func(RevocationEvent) { got++ })
	r.verifier.Revoke("node1", "first")
	if got != 1 {
		t.Fatalf("subscriber saw %d events, want 1", got)
	}
	cancel()
	// A fresh node so Revoke is not short-circuited by idempotency.
	if err := r.verifier.AddNode("node2", NodeConfig{Agent: r.agent, PlatformPCRs: r.whitelist()}); err != nil {
		t.Fatal(err)
	}
	r.verifier.Revoke("node2", "second")
	if got != 1 {
		t.Fatalf("cancelled subscriber saw %d events, want 1", got)
	}
}
