// Command boltedctl is the tenant CLI for a running boltedd: it speaks
// the HIL REST API to manage projects, nodes, networks and power.
//
// Usage:
//
//	boltedctl [-server URL] <command> [args]
//
//	project create <name>
//	node list-free
//	node allocate <project> [node]
//	node free <project> <node>
//	node metadata <node>
//	net create <project> <network>
//	net delete <project> <network>
//	net connect <project> <node> <network>
//	net detach <project> <node> <network>
//	power <on|off|cycle> <project> <node>
//	image list
//	image create <name> <size-bytes>
//	image clone <src> <dst>
//	image snapshot <src> <snap>
//	image delete <name>
//	image bootinfo <name>
//	firmware verify <node> <source-id> <source-file>
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/hil"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: boltedctl [-server URL] <command> [args]
commands:
  project create <name>
  node list-free
  node allocate <project> [node]
  node free <project> <node>
  node metadata <node>
  net create <project> <network>
  net delete <project> <network>
  net connect <project> <node> <network>
  net detach <project> <node> <network>
  power <on|off|cycle> <project> <node>
  image list | create <name> <size> | clone <src> <dst> |
        snapshot <src> <snap> | delete <name> | bootinfo <name>
  firmware verify <node> <source-id> <source-file>
        (rebuild LinuxBoot from source and compare against the
         provider-published platform PCR for the node)`)
	os.Exit(2)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "boltedd HIL API base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		usage()
	}
	c := hil.NewClient(*server)

	need := func(n int) {
		if len(args) != n {
			usage()
		}
	}
	var err error
	switch args[0] + " " + args[1] {
	case "project create":
		need(3)
		err = c.CreateProject(args[2])
	case "node list-free":
		need(2)
		var free []string
		free, err = c.FreeNodes()
		for _, n := range free {
			fmt.Println(n)
		}
	case "node allocate":
		node := ""
		if len(args) == 4 {
			node = args[3]
		} else {
			need(3)
		}
		var got string
		got, err = c.AllocateNode(args[2], node)
		if err == nil {
			fmt.Println(got)
		}
	case "node free":
		need(4)
		err = c.FreeNode(args[2], args[3])
	case "node metadata":
		need(3)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		for k, v := range md {
			fmt.Printf("%s=%s\n", k, v)
		}
	case "net create":
		need(4)
		err = c.CreateNetwork(args[2], args[3])
	case "net delete":
		need(4)
		err = c.DeleteNetwork(args[2], args[3])
	case "net connect":
		need(5)
		err = c.ConnectNode(args[2], args[3], args[4])
	case "net detach":
		need(5)
		err = c.DetachNode(args[2], args[3], args[4])
	case "power on", "power off", "power cycle":
		need(4)
		err = c.Power(args[2], args[3], args[1])
	case "image list":
		need(2)
		var imgs []string
		imgs, err = bmiClient(*server).ListImages()
		for _, i := range imgs {
			fmt.Println(i)
		}
	case "image create":
		need(4)
		var size int64
		size, err = strconv.ParseInt(args[3], 10, 64)
		if err == nil {
			err = bmiClient(*server).CreateImage(args[2], size)
		}
	case "image clone":
		need(4)
		err = bmiClient(*server).CloneImage(args[2], args[3])
	case "image snapshot":
		need(4)
		err = bmiClient(*server).SnapshotImage(args[2], args[3])
	case "image delete":
		need(3)
		err = bmiClient(*server).DeleteImage(args[2])
	case "image bootinfo":
		need(3)
		var bi *bmi.BootInfo
		bi, err = bmiClient(*server).ExtractBootInfo(args[2])
		if err == nil {
			fmt.Printf("kernel-id: %s\ncmdline:   %s\nkernel:    %d bytes\ninitrd:    %d bytes\n",
				bi.KernelID, bi.Cmdline, len(bi.Kernel), len(bi.Initrd))
		}
	case "firmware verify":
		need(5)
		var md map[string]string
		md, err = c.NodeMetadata(args[2])
		if err != nil {
			break
		}
		var source []byte
		source, err = os.ReadFile(args[4])
		if err != nil {
			break
		}
		if err = core.VerifyPublishedFirmware(md, args[3], source); err == nil {
			fmt.Printf("node %s: published firmware measurement matches your build of %s\n", args[2], args[3])
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "boltedctl:", err)
		os.Exit(1)
	}
}

// bmiClient returns a BMI client for the boltedd server's /bmi prefix.
func bmiClient(server string) *bmi.Client {
	return bmi.NewClient(server + "/bmi")
}
