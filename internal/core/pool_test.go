package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// poolEnclave builds an enclave with a warm pool at the given target
// and waits for the refiller to reach it.
func poolEnclave(t *testing.T, cloud *Cloud, profile Profile, target int) *Enclave {
	t.Helper()
	e, err := NewEnclave(cloud, "t", profile)
	if err != nil {
		t.Fatal(err)
	}
	if profile.ContinuousAttest {
		e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))
	}
	pol := DefaultPoolPolicy()
	pol.Target = target
	pol.RetryBackoff = 5 * time.Millisecond
	if err := e.ConfigurePool(pol); err != nil {
		t.Fatal(err)
	}
	waitWarm(t, e, target)
	return e
}

// waitWarm polls until the pool parks `want` standbys.
func waitWarm(t *testing.T, e *Enclave, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, ok := e.PoolStats()
		if ok && st.Warm >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d warm: %+v", want, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWarmPoolFastPath: a batch served entirely from the pool reports
// only warm-path phases, and every standby transited Warm on its way
// to Allocated.
func TestWarmPoolFastPath(t *testing.T) {
	cloud := testCloud(t, 4, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileCharlie, 2)
	defer e.Destroy()

	res, err := e.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 || len(res.Failed) != 0 {
		t.Fatalf("allocated %d, failed %d", len(res.Nodes), len(res.Failed))
	}
	if p := res.Timings.ByPhase(PhaseWarmRequote); p.Nodes != 2 {
		t.Fatalf("expected 2 warm re-quotes, got %+v", res.Timings.Phases)
	}
	if p := res.Timings.ByPhase(PhaseBoot); p.Nodes != 0 {
		t.Fatalf("warm batch paid the cold boot phase: %+v", res.Timings.Phases)
	}
	st, _ := e.PoolStats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 2 hits 0 misses", st)
	}
	// The standbys' journal shows the fast path: warm then joined,
	// with the re-quote recorded against the tenant verifier.
	for _, n := range res.Nodes {
		kinds := map[EventKind]bool{}
		warmRequote := false
		for _, ev := range e.Journal().ByNode(n.Name) {
			kinds[ev.Kind] = true
			if ev.Kind == EvAttested && strings.Contains(ev.Detail, "warm-requote") {
				warmRequote = true
			}
		}
		if !kinds[EvWarm] || !kinds[EvJoined] || !warmRequote {
			t.Fatalf("node %s journal missing warm fast-path records: %v", n.Name, e.Journal().ByNode(n.Name))
		}
		// Full member: data path works like any cold-provisioned node.
		if e.NodeState(n.Name) != StateAllocated {
			t.Fatalf("node %s is %s", n.Name, e.NodeState(n.Name))
		}
	}
	if _, err := e.Send(res.Nodes[0].Name, res.Nodes[1].Name, []byte("ping")); err != nil {
		t.Fatalf("warm-provisioned members cannot talk: %v", err)
	}
}

// TestWarmPoolColdFallback: a batch larger than the pool drains it and
// falls back to the cold chain for the remainder.
func TestWarmPoolColdFallback(t *testing.T) {
	cloud := testCloud(t, 4, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 1)
	defer e.Destroy()

	res, err := e.AcquireNodes(context.Background(), "fedora28", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("allocated %d of 3 (failed: %v)", len(res.Nodes), res.Failed)
	}
	if p := res.Timings.ByPhase(PhaseWarmProvision); p.Nodes != 1 {
		t.Fatalf("expected 1 warm-path node, got %+v", res.Timings.Phases)
	}
	if p := res.Timings.ByPhase(PhaseBoot); p.Nodes != 2 {
		t.Fatalf("expected 2 cold-path nodes, got %+v", res.Timings.Phases)
	}
	st, _ := e.PoolStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit 2 misses", st)
	}
}

// TestWarmPoolRefillUnderConcurrentDrain: concurrent single-node
// acquisitions and releases race the background refiller; every
// acquisition must get a healthy node and the pool must converge back
// to target once the churn stops.
func TestWarmPoolRefillUnderConcurrentDrain(t *testing.T) {
	cloud := testCloud(t, 8, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 3)
	defer e.Destroy()

	const (
		workers = 4
		rounds  = 5
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				node, err := e.AcquireNode(context.Background(), "fedora28")
				if err != nil {
					errs <- err
					return
				}
				if err := e.ReleaseNode(node.Name, ""); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Churn over: the refiller restores target occupancy.
	waitWarm(t, e, 3)
	st, _ := e.PoolStats()
	if st.Rejected != 0 {
		t.Fatalf("healthy churn rejected nodes: %+v", st)
	}
}

// TestWarmQuarantineNeverHandedOut: a quarantined standby leaves the
// pool for the provider's rejected project and no later acquisition —
// or refill — can ever touch it.
func TestWarmQuarantineNeverHandedOut(t *testing.T) {
	cloud := testCloud(t, 3, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 1)
	defer e.Destroy()

	st, _ := e.PoolStats()
	victim := st.WarmNodes[0]
	if err := e.QuarantineNode(victim, "firmware implant found on standby"); err != nil {
		t.Fatal(err)
	}
	if got := e.NodeState(victim); got != StateQuarantined {
		t.Fatalf("victim is %s, want %s", got, StateQuarantined)
	}
	if _, banned := cloud.Rejected()[victim]; !banned {
		t.Fatal("victim not in the provider's rejected pool")
	}

	// The refiller replaces the standby from the remaining free nodes;
	// the quarantined one must never be chosen again.
	waitWarm(t, e, 1)
	res, err := e.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.Name == victim {
			t.Fatalf("quarantined standby %s handed to the tenant", victim)
		}
	}
	st, _ = e.PoolStats()
	for _, n := range st.WarmNodes {
		if n == victim {
			t.Fatalf("quarantined standby %s re-entered the pool", victim)
		}
	}
	// A second quarantine of the same node is a conflict, not a panic.
	if err := e.QuarantineNode(victim, "again"); err == nil {
		t.Fatal("double quarantine succeeded")
	}
}

// TestWarmPoolDrainOnDestroy: DeleteEnclave (via Destroy) stops the
// refiller and returns every standby to the provider's free pool.
func TestWarmPoolDrainOnDestroy(t *testing.T) {
	cloud := testCloud(t, 6, FirmwareLinuxBoot)
	mgr := NewManager(cloud)
	if _, err := mgr.CreateEnclave("t", ProfileBob); err != nil {
		t.Fatal(err)
	}
	if _, created, err := mgr.ConfigurePool("t", PoolPolicy{Target: 3}); err != nil || !created {
		t.Fatalf("configure pool: created=%v err=%v", created, err)
	}
	e, err := mgr.Enclave("t")
	if err != nil {
		t.Fatal(err)
	}
	waitWarm(t, e, 3)

	if err := mgr.DeleteEnclave("t"); err != nil {
		t.Fatal(err)
	}
	free, err := cloud.HIL.FreeNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 6 {
		t.Fatalf("%d of 6 nodes free after delete (standbys leaked?)", len(free))
	}
}

// TestWarmPoolDrainVerb: DrainPool empties the pool, idles the
// refiller (target 0) and keeps the rest of the policy; raising the
// target re-arms it.
func TestWarmPoolDrainVerb(t *testing.T) {
	cloud := testCloud(t, 4, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 2)
	defer e.Destroy()

	st, err := e.DrainPool()
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm != 0 || st.Policy.Target != 0 || st.Drained < 2 {
		t.Fatalf("drain left %+v", st)
	}
	free, _ := cloud.HIL.FreeNodes()
	if len(free) != 4 {
		t.Fatalf("%d of 4 nodes free after drain", len(free))
	}
	// Idle: no refill happens at target 0.
	time.Sleep(20 * time.Millisecond)
	if st, _ := e.PoolStats(); st.Warm != 0 || st.Refilling != 0 {
		t.Fatalf("drained pool refilled itself: %+v", st)
	}
	// Re-arm.
	pol := st.Policy
	pol.Target = 1
	if err := e.ConfigurePool(pol); err != nil {
		t.Fatal(err)
	}
	waitWarm(t, e, 1)
}

// TestWarmPoolReservationRollback: when the free pool cannot supply
// the cold remainder, the batch fails atomically and the taken
// standbys go back to the pool.
func TestWarmPoolReservationRollback(t *testing.T) {
	cloud := testCloud(t, 2, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 2)
	defer e.Destroy()

	// 2 warm + 0 free: asking for 4 must fail without consuming the
	// standbys.
	if _, err := e.AcquireNodes(context.Background(), "fedora28", 4); err == nil {
		t.Fatal("over-sized batch succeeded")
	}
	st, _ := e.PoolStats()
	if st.Warm != 2 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("standbys or counters not rolled back: %+v", st)
	}
	// The pool still serves a correctly-sized batch.
	res, err := e.AcquireNodes(context.Background(), "fedora28", 2)
	if err != nil || len(res.Nodes) != 2 {
		t.Fatalf("post-rollback batch: %d nodes, %v", len(res.Nodes), err)
	}
}

// TestPoolPolicyValidate rejects nonsense policies.
func TestPoolPolicyValidate(t *testing.T) {
	for _, p := range []PoolPolicy{
		{Target: -1},
		{Airlocks: -2},
		{MaxRefill: -1},
		{RetryBackoff: -time.Second},
	} {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %+v validated", p)
		}
	}
	cloud := testCloud(t, 2, FirmwareLinuxBoot)
	e, err := NewEnclave(cloud, "t", ProfileAlice)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ConfigurePool(PoolPolicy{Target: -1}); err == nil {
		t.Fatal("invalid policy configured")
	}
}

// TestWarmPoolNoAttestProfile: Alice's pool skips pre-attestation and
// the fast path skips the re-quote, but the kexec shortcut still
// applies.
func TestWarmPoolNoAttestProfile(t *testing.T) {
	cloud := testCloud(t, 2, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileAlice, 1)
	defer e.Destroy()

	res, err := e.AcquireNodes(context.Background(), "fedora28", 1)
	if err != nil || len(res.Nodes) != 1 {
		t.Fatalf("alice warm acquire: %d nodes, %v", len(res.Nodes), err)
	}
	if p := res.Timings.ByPhase(PhaseWarmRequote); p.Nodes != 0 {
		t.Fatalf("no-attest profile re-quoted: %+v", res.Timings.Phases)
	}
	if p := res.Timings.ByPhase(PhaseWarmProvision); p.Nodes != 1 {
		t.Fatalf("expected warm provision phase: %+v", res.Timings.Phases)
	}
}

// TestWarmBanMidAcquisition: a revocation landing in the window
// between pool.take and admission must not resolve into nothing — the
// node is banned, and both exits from that window (rollback putBack,
// or the admission gate) route it to quarantine instead of the
// enclave, the pool, or the free pool.
func TestWarmBanMidAcquisition(t *testing.T) {
	cloud := testCloud(t, 4, FirmwareLinuxBoot)
	e := poolEnclave(t, cloud, ProfileBob, 2)
	defer e.Destroy()
	pool := e.warmPool()

	// Emulate the guard arriving after a batch took the standby.
	taken := pool.take(1)
	if len(taken) != 1 {
		t.Fatalf("took %d standbys", len(taken))
	}
	victim := taken[0].name
	if err := e.QuarantineNode(victim, "revoked mid-acquisition"); err != nil {
		t.Fatalf("quarantine of a taken standby should ban, not fail: %v", err)
	}
	// Rollback path: putBack must quarantine the banned node rather
	// than re-pool it.
	pool.putBack(taken, 0)
	if got := e.NodeState(victim); got != StateQuarantined {
		t.Fatalf("banned standby is %s after putBack, want %s", got, StateQuarantined)
	}
	if _, banned := cloud.Rejected()[victim]; !banned {
		t.Fatal("banned standby not in the provider's rejected pool")
	}
	st, _ := e.PoolStats()
	for _, n := range st.WarmNodes {
		if n == victim {
			t.Fatalf("banned standby %s re-entered the pool", victim)
		}
	}

	// Admission path: ban another taken standby and let the fast path
	// run — the admission gate must reject it.
	waitWarm(t, e, 1)
	st, _ = e.PoolStats()
	second := st.WarmNodes[0]
	stop := make(chan struct{})
	go func() {
		// Ban as soon as the node leaves the pool, racing the fast path.
		for {
			select {
			case <-stop:
				return
			default:
			}
			if cur, _ := e.PoolStats(); cur.Warm == 0 {
				_ = e.QuarantineNode(second, "revoked mid-acquisition")
				return
			}
		}
	}()
	res, err := e.AcquireNodes(context.Background(), "fedora28", 1)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	// Either the ban landed before admission (node rejected, batch
	// reports the failure) or after the state check found it already
	// parked/allocated — in no outcome may a banned-and-rejected node
	// be a member while quarantined.
	if len(res.Failed) == 1 {
		if got := e.NodeState(second); got != StateQuarantined && got != StateRejected {
			t.Fatalf("banned standby is %s after rejected admission", got)
		}
	} else if len(res.Nodes) != 1 {
		t.Fatalf("batch produced neither a member nor a failure: %+v", res)
	}
}
