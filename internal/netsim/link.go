package netsim

import (
	"math"
	"time"
)

// LinkSpec describes the performance characteristics of a network path:
// bandwidth in bits per second, one-way latency, and MTU in bytes. The
// paper's cluster interconnect is 10 GbE with standard (1500) or jumbo
// (9000) frames.
type LinkSpec struct {
	BandwidthBps float64
	Latency      time.Duration
	MTU          int
}

// TenGbE returns the paper's 10 Gbit link with the given MTU.
func TenGbE(mtu int) LinkSpec {
	return LinkSpec{BandwidthBps: 10e9, Latency: 50 * time.Microsecond, MTU: mtu}
}

// OneGbE returns a 1 Gbit management link (BMC/PXE traffic).
func OneGbE(mtu int) LinkSpec {
	return LinkSpec{BandwidthBps: 1e9, Latency: 100 * time.Microsecond, MTU: mtu}
}

// TransferCost models moving a payload across the link for the
// discrete-event simulation. perPacketHdr is additional per-packet header
// overhead (e.g. ESP encapsulation), and perPacketCPU is per-packet
// processing cost (e.g. AEAD seal+open) charged serially with the wire
// time, which is how a single-core IPsec path behaves (§7.2: 60-80% of
// one core at 10 Gbit).
type TransferCost struct {
	PerPacketHdr int
	PerPacketCPU time.Duration
	// CPUBandwidthBps, when positive, caps throughput at the crypto
	// engine's byte rate, modelling the cipher as the bottleneck.
	CPUBandwidthBps float64
}

// TransferTime returns the simulated time to move n payload bytes over
// the link under the given cost model.
func (l LinkSpec) TransferTime(n int64, cost TransferCost) time.Duration {
	if n <= 0 {
		return l.Latency
	}
	payloadPerPkt := l.MTU - 40 - cost.PerPacketHdr // 40: IP+TCP headers
	if payloadPerPkt < 1 {
		payloadPerPkt = 1
	}
	pkts := (n + int64(payloadPerPkt) - 1) / int64(payloadPerPkt)
	wireBytes := n + pkts*int64(40+cost.PerPacketHdr+38) // 38: Ethernet frame+gap
	wire := time.Duration(float64(wireBytes*8) / l.BandwidthBps * float64(time.Second))
	cpu := time.Duration(pkts) * cost.PerPacketCPU
	if cost.CPUBandwidthBps > 0 {
		cipherTime := time.Duration(float64(n*8) / cost.CPUBandwidthBps * float64(time.Second))
		cpu += cipherTime
	}
	// Wire and CPU pipelines overlap imperfectly; the slower one
	// dominates and the other contributes a fill fraction.
	slow, fast := wire, cpu
	if cpu > wire {
		slow, fast = cpu, wire
	}
	return l.Latency + slow + fast/8
}

// Throughput returns the effective payload throughput in bits per second
// for a large transfer under the cost model.
func (l LinkSpec) Throughput(cost TransferCost) float64 {
	const probe = 1 << 30 // 1 GiB
	t := l.TransferTime(probe, cost)
	if t <= 0 {
		return math.Inf(1)
	}
	return float64(probe*8) / t.Seconds()
}
