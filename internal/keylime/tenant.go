package keylime

import (
	"context"
	"crypto/ecdh"
	"encoding/hex"
	"errors"
	"fmt"

	"bolted/internal/ima"
	"bolted/internal/tpm"
)

// Tenant is the tenant-side Keylime component: it originates the
// bootstrap key, provisions the verifier, delivers the U share to the
// agent, and performs the anti-spoofing check binding the attested TPM
// to the provider-published node identity.
type Tenant struct {
	verifier *Verifier
}

// NewTenant creates the tenant client for a verifier (which the tenant
// may itself host — Charlie — or rent from the provider — Bob).
func NewTenant(v *Verifier) *Tenant { return &Tenant{verifier: v} }

// EKMetadataKey is the HIL node-metadata key under which the provider
// publishes each node's TPM endorsement public key.
const EKMetadataKey = "tpm_ek_pub"

// EncodeEK formats an endorsement key for HIL metadata.
func EncodeEK(ek *ecdh.PublicKey) string { return hex.EncodeToString(ek.Bytes()) }

// VerifyNodeIdentity checks that the EK an agent registered with equals
// the provider-published EK for the node the tenant reserved. A
// mismatch means the provider (or an attacker) wired the tenant to a
// different physical machine — the server-spoofing attack of §5.
func VerifyNodeIdentity(reg RegistrarConn, uuid string, hilMetadata map[string]string) error {
	published, ok := hilMetadata[EKMetadataKey]
	if !ok {
		return errors.New("keylime: provider metadata has no TPM EK binding")
	}
	ek, err := reg.EK(uuid)
	if err != nil {
		return err
	}
	if EncodeEK(ek) != published {
		return fmt.Errorf("keylime: node %q TPM EK does not match provider metadata (server spoofing?)", uuid)
	}
	return nil
}

// ProvisionSpec is what the tenant wants delivered to an attested node.
type ProvisionSpec struct {
	Payload       *Payload
	PlatformPCRs  map[int][]tpm.Digest
	IMAWhitelist  *ima.Whitelist // nil disables continuous attestation
	HILMetadata   map[string]string
	SkipEKBinding bool // test hook / providers without EK publication
}

// Provision runs the tenant side of bringing a node into the enclave:
//
//  1. Verify the agent's EK matches the provider-published identity.
//  2. Generate K, split into U and V.
//  3. Seal the payload with K, hand V + payload + whitelist to the CV.
//  4. Deliver U directly to the agent.
//  5. Ask the CV to attest the node; on success the CV releases V and
//     the agent can unwrap.
//
// It returns the bootstrap key so the tenant can later derive the same
// disk/network keys it embedded in the payload.
func (t *Tenant) Provision(ctx context.Context, reg RegistrarConn, agent AgentConn, spec ProvisionSpec) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("keylime: %w", err)
	}
	if spec.Payload == nil {
		return nil, errors.New("keylime: provision needs a payload")
	}
	uuid := agent.UUID()
	if !spec.SkipEKBinding {
		if err := VerifyNodeIdentity(reg, uuid, spec.HILMetadata); err != nil {
			return nil, err
		}
	}
	k := NewBootstrapKey()
	u, v, err := SplitKey(k)
	if err != nil {
		return nil, err
	}
	sealed, err := SealPayload(k, spec.Payload)
	if err != nil {
		return nil, err
	}
	if err := t.verifier.AddNode(uuid, NodeConfig{
		Agent:         agent,
		V:             v,
		SealedPayload: sealed,
		PlatformPCRs:  spec.PlatformPCRs,
		IMAWhitelist:  spec.IMAWhitelist,
	}); err != nil {
		return nil, err
	}
	agent.ReceiveU(u)
	if err := t.verifier.AttestBoot(ctx, uuid); err != nil {
		return nil, err
	}
	return k, nil
}
