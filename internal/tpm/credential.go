package tpm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// CredentialBlob is a secret encrypted to a TPM's endorsement key. Only
// the TPM holding the matching EK private key can recover the secret, so
// returning it proves possession of that EK — this is how a Keylime
// registrar binds a claimed AIK to a physical TPM identity (TPM2
// MakeCredential / ActivateCredential).
type CredentialBlob struct {
	EphemeralPub []byte // ECDH ephemeral public key (uncompressed point)
	Nonce        []byte // AES-GCM nonce
	Ciphertext   []byte // sealed secret
	AIKBinding   Digest // SHA-256 of the AIK public key the secret vouches for
}

// MakeCredential encrypts secret to the endorsement key ekPub, binding it
// to the AIK whose public-key hash is aikBinding. Run by the registrar.
func MakeCredential(ekPub *ecdh.PublicKey, aikBinding Digest, secret []byte) (*CredentialBlob, error) {
	eph, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("tpm: ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(ekPub)
	if err != nil {
		return nil, fmt.Errorf("tpm: ECDH: %w", err)
	}
	aead, err := credentialAEAD(shared, aikBinding)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	readFull(nonce)
	return &CredentialBlob{
		EphemeralPub: eph.PublicKey().Bytes(),
		Nonce:        nonce,
		Ciphertext:   aead.Seal(nil, nonce, secret, aikBinding[:]),
		AIKBinding:   aikBinding,
	}, nil
}

// ActivateCredential recovers the secret from a credential blob using the
// TPM's EK private key. It fails if the blob was made for a different EK
// or binds a different AIK than this TPM's.
func (t *TPM) ActivateCredential(blob *CredentialBlob) ([]byte, error) {
	if blob == nil {
		return nil, errors.New("tpm: nil credential blob")
	}
	wantBinding := AIKBinding(t.AIKPublic())
	if blob.AIKBinding != wantBinding {
		return nil, errors.New("tpm: credential bound to a different AIK")
	}
	ephPub, err := ecdh.P256().NewPublicKey(blob.EphemeralPub)
	if err != nil {
		return nil, fmt.Errorf("tpm: bad ephemeral key: %w", err)
	}
	shared, err := t.ek.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("tpm: ECDH: %w", err)
	}
	aead, err := credentialAEAD(shared, blob.AIKBinding)
	if err != nil {
		return nil, err
	}
	secret, err := aead.Open(nil, blob.Nonce, blob.Ciphertext, blob.AIKBinding[:])
	if err != nil {
		return nil, errors.New("tpm: credential activation failed (wrong EK?)")
	}
	return secret, nil
}

// AIKBinding hashes an AIK public key into the binding digest used by
// MakeCredential: SHA-256 over the fixed-width X || Y coordinates.
func AIKBinding(pub *ecdsa.PublicKey) Digest {
	var xy [64]byte
	pub.X.FillBytes(xy[:32])
	pub.Y.FillBytes(xy[32:])
	h := sha256.New()
	h.Write([]byte("TPM_AIK_BINDING"))
	h.Write(xy[:])
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

func credentialAEAD(shared []byte, binding Digest) (cipher.AEAD, error) {
	kdf := sha256.New()
	kdf.Write([]byte("TPM_CREDENTIAL_KDF"))
	kdf.Write(shared)
	kdf.Write(binding[:])
	block, err := aes.NewCipher(kdf.Sum(nil))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
