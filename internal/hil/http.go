package hil

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// This file provides HIL's REST surface, mirroring the real project's
// HTTP API, so tenant tooling (cmd/boltedctl) drives the service the
// same way it would drive a deployed HIL.

// NewHandler exposes a Service over HTTP.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	writeErr := func(w http.ResponseWriter, err error) {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrNotFound):
			code = http.StatusNotFound
		case errors.Is(err, ErrUnauthorized):
			code = http.StatusForbidden
		case errors.Is(err, ErrInUse):
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
	}
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	decode := func(r *http.Request, v interface{}) error {
		return json.NewDecoder(r.Body).Decode(v)
	}

	mux.HandleFunc("PUT /projects/{project}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CreateProject(r.PathValue("project")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteProject(r.PathValue("project")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("GET /nodes/free", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.FreeNodes())
	})
	mux.HandleFunc("GET /nodes/{node}/metadata", func(w http.ResponseWriter, r *http.Request) {
		md, err := s.NodeMetadata(r.PathValue("node"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, md)
	})
	mux.HandleFunc("POST /projects/{project}/nodes", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Node string }
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		node := req.Node
		if node == "" {
			node, err = s.AllocateAnyNode(r.Context(), r.PathValue("project"))
		} else {
			err = s.AllocateNode(r.Context(), r.PathValue("project"), node)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, map[string]string{"node": node})
	})
	mux.HandleFunc("DELETE /projects/{project}/nodes/{node}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.FreeNode(r.Context(), r.PathValue("project"), r.PathValue("node")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("PUT /projects/{project}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.CreateNetwork(r.Context(), r.PathValue("project"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteNetwork(r.Context(), r.PathValue("project"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("PUT /projects/{project}/nodes/{node}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.ConnectNode(r.Context(), r.PathValue("project"), r.PathValue("node"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
	})
	mux.HandleFunc("DELETE /projects/{project}/nodes/{node}/networks/{network}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DetachNode(r.Context(), r.PathValue("project"), r.PathValue("node"), r.PathValue("network")); err != nil {
			writeErr(w, err)
			return
		}
	})
	mux.HandleFunc("POST /projects/{project}/nodes/{node}/power", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Op string }
		if err := decode(r, &req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var err error
		switch req.Op {
		case "on":
			err = s.PowerOn(r.Context(), r.PathValue("project"), r.PathValue("node"))
		case "off":
			err = s.PowerOff(r.Context(), r.PathValue("project"), r.PathValue("node"))
		case "cycle":
			err = s.PowerCycle(r.Context(), r.PathValue("project"), r.PathValue("node"))
		default:
			http.Error(w, "unknown power op "+req.Op, http.StatusBadRequest)
			return
		}
		if err != nil {
			writeErr(w, err)
		}
	})
	return mux
}

// Client is an HTTP client for a remote HIL service.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the HIL API at base URL.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: http.DefaultClient}
}

func (c *Client) do(method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("hil: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// CreateProject creates a project.
func (c *Client) CreateProject(name string) error {
	return c.do("PUT", "/projects/"+name, nil, nil)
}

// FreeNodes lists unallocated nodes.
func (c *Client) FreeNodes() ([]string, error) {
	var out []string
	err := c.do("GET", "/nodes/free", nil, &out)
	return out, err
}

// AllocateNode reserves a node ("" = any free node); returns its name.
func (c *Client) AllocateNode(project, node string) (string, error) {
	var out struct{ Node string }
	err := c.do("POST", "/projects/"+project+"/nodes", map[string]string{"Node": node}, &out)
	return out.Node, err
}

// FreeNode releases a node back to the free pool.
func (c *Client) FreeNode(project, node string) error {
	return c.do("DELETE", "/projects/"+project+"/nodes/"+node, nil, nil)
}

// CreateNetwork allocates a tenant network.
func (c *Client) CreateNetwork(project, network string) error {
	return c.do("PUT", "/projects/"+project+"/networks/"+network, nil, nil)
}

// DeleteNetwork frees a tenant network.
func (c *Client) DeleteNetwork(project, network string) error {
	return c.do("DELETE", "/projects/"+project+"/networks/"+network, nil, nil)
}

// ConnectNode attaches a node to a network.
func (c *Client) ConnectNode(project, node, network string) error {
	return c.do("PUT", "/projects/"+project+"/nodes/"+node+"/networks/"+network, nil, nil)
}

// DetachNode removes a node from a network.
func (c *Client) DetachNode(project, node, network string) error {
	return c.do("DELETE", "/projects/"+project+"/nodes/"+node+"/networks/"+network, nil, nil)
}

// NodeMetadata fetches a node's provider-published metadata.
func (c *Client) NodeMetadata(node string) (map[string]string, error) {
	var out map[string]string
	err := c.do("GET", "/nodes/"+node+"/metadata", nil, &out)
	return out, err
}

// Power issues a power operation: "on", "off" or "cycle".
func (c *Client) Power(project, node, op string) error {
	return c.do("POST", "/projects/"+project+"/nodes/"+node+"/power", map[string]string{"Op": op}, nil)
}
