// Package ipsec implements an ESP-style encrypted tunnel between two
// endpoints, the mechanism security-sensitive Bolted tenants use so they
// need not trust the provider's network (§5, §7.2). It performs real
// AES-256-GCM per packet — the paper's AES-256-GCM SHA2-256 suite — with
// SPI/sequence-number encapsulation and standard anti-replay windowing.
//
// Two cipher paths reproduce Figure 3b's comparison: SuiteHWAES uses
// crypto/aes (AES-NI on amd64), SuiteSWAES uses the pure-Go softaes
// package, modelling a kernel without hardware AES.
package ipsec

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"bolted/internal/softaes"
)

// Suite selects the AES implementation backing the tunnel.
type Suite int

const (
	// SuiteHWAES uses the standard library AES (hardware AES-NI where
	// available) — the paper's "IPsec HW" configuration.
	SuiteHWAES Suite = iota
	// SuiteSWAES uses a pure-Go software AES — the paper's "IPsec SW".
	SuiteSWAES
)

func (s Suite) String() string {
	switch s {
	case SuiteHWAES:
		return "aes-256-gcm-hw"
	case SuiteSWAES:
		return "aes-256-gcm-sw"
	default:
		return fmt.Sprintf("suite(%d)", int(s))
	}
}

// Encapsulation overheads in bytes, used both by the real packet path and
// the analytic link model (tunnel mode: outer IP + SPI + seq + IV + ICV).
const (
	HeaderOverhead = 20 + 4 + 4 + 8 // outer IP, SPI, seq, IV
	TagOverhead    = 16             // GCM ICV
	TotalOverhead  = HeaderOverhead + TagOverhead
)

// replayWindowSize is the anti-replay bitmap width (RFC 4303 minimum 32;
// Linux default 64).
const replayWindowSize = 64

var (
	// ErrReplay indicates a packet with an already-seen or too-old
	// sequence number.
	ErrReplay = errors.New("ipsec: replayed or stale sequence number")
	// ErrAuth indicates packet authentication failure.
	ErrAuth = errors.New("ipsec: packet authentication failed")
	// ErrRevoked indicates the SA has been torn down by key revocation.
	ErrRevoked = errors.New("ipsec: security association revoked")
	// ErrExpired indicates the SA exceeded its lifetime and must be
	// rekeyed before carrying more traffic.
	ErrExpired = errors.New("ipsec: security association lifetime exceeded")
)

// SA is a unidirectional security association.
type SA struct {
	mu      sync.Mutex
	spi     uint32
	aead    cipher.AEAD
	salt    [4]byte
	seq     uint64 // outbound: last sent; inbound: highest received
	window  uint64 // inbound anti-replay bitmap, bit 0 = seq
	revoked bool

	// Lifetime limits (0 = unlimited). When either is exceeded the SA
	// refuses further traffic until rekeyed, bounding how much
	// ciphertext any one key protects (RFC 4301 lifetimes).
	maxBytes, maxPkts   uint64
	usedBytes, usedPkts uint64
}

// newSA derives a directional SA from a master key, SPI and direction
// label. Both tunnel ends derive identical SAs from the shared key.
func newSA(suite Suite, masterKey []byte, spi uint32, dir string) (*SA, error) {
	mac := hmac.New(sha256.New, masterKey)
	fmt.Fprintf(mac, "ipsec-sa|%d|%s", spi, dir)
	keymat := mac.Sum(nil) // 32 bytes: AES-256 key
	mac.Reset()
	fmt.Fprintf(mac, "ipsec-salt|%d|%s", spi, dir)
	saltmat := mac.Sum(nil)

	var block cipher.Block
	var err error
	switch suite {
	case SuiteHWAES:
		block, err = aes.NewCipher(keymat)
	case SuiteSWAES:
		block, err = softaes.New(keymat)
	default:
		return nil, fmt.Errorf("ipsec: unknown suite %v", suite)
	}
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	sa := &SA{spi: spi, aead: aead}
	copy(sa.salt[:], saltmat[:4])
	return sa, nil
}

// nonce builds the RFC 4106-style nonce: 4-byte salt || 8-byte sequence.
func (sa *SA) nonce(seq uint64) []byte {
	n := make([]byte, 12)
	copy(n, sa.salt[:])
	binary.BigEndian.PutUint64(n[4:], seq)
	return n
}

// SetLifetime bounds the SA to maxBytes of payload and maxPkts packets
// (0 = unlimited).
func (sa *SA) SetLifetime(maxBytes, maxPkts uint64) {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.maxBytes, sa.maxPkts = maxBytes, maxPkts
}

// Seal encapsulates a payload: SPI(4) || seq(8) || ciphertext+tag.
func (sa *SA) Seal(payload []byte) ([]byte, error) {
	sa.mu.Lock()
	if sa.revoked {
		sa.mu.Unlock()
		return nil, ErrRevoked
	}
	if (sa.maxBytes > 0 && sa.usedBytes+uint64(len(payload)) > sa.maxBytes) ||
		(sa.maxPkts > 0 && sa.usedPkts+1 > sa.maxPkts) {
		sa.mu.Unlock()
		return nil, ErrExpired
	}
	sa.usedBytes += uint64(len(payload))
	sa.usedPkts++
	sa.seq++
	seq := sa.seq
	sa.mu.Unlock()

	hdr := make([]byte, 12, 12+len(payload)+TagOverhead)
	binary.BigEndian.PutUint32(hdr[:4], sa.spi)
	binary.BigEndian.PutUint64(hdr[4:], seq)
	return sa.aead.Seal(hdr, sa.nonce(seq), payload, hdr[:12]), nil
}

// Open authenticates and decapsulates a packet, enforcing anti-replay.
func (sa *SA) Open(pkt []byte) ([]byte, error) {
	if len(pkt) < 12+TagOverhead {
		return nil, errors.New("ipsec: packet too short")
	}
	spi := binary.BigEndian.Uint32(pkt[:4])
	if spi != sa.spi {
		return nil, fmt.Errorf("ipsec: SPI %d does not match SA %d", spi, sa.spi)
	}
	seq := binary.BigEndian.Uint64(pkt[4:12])

	sa.mu.Lock()
	if sa.revoked {
		sa.mu.Unlock()
		return nil, ErrRevoked
	}
	if err := sa.checkReplayLocked(seq); err != nil {
		sa.mu.Unlock()
		return nil, err
	}
	sa.mu.Unlock()

	payload, err := sa.aead.Open(nil, sa.nonce(seq), pkt[12:], pkt[:12])
	if err != nil {
		return nil, ErrAuth
	}

	sa.mu.Lock()
	sa.markSeenLocked(seq)
	sa.mu.Unlock()
	return payload, nil
}

func (sa *SA) checkReplayLocked(seq uint64) error {
	if seq == 0 {
		return ErrReplay
	}
	if seq > sa.seq {
		return nil // future packet, always fresh
	}
	diff := sa.seq - seq
	if diff >= replayWindowSize {
		return ErrReplay // too old
	}
	if sa.window&(1<<diff) != 0 {
		return ErrReplay // already seen
	}
	return nil
}

func (sa *SA) markSeenLocked(seq uint64) {
	if seq > sa.seq {
		shift := seq - sa.seq
		if shift >= replayWindowSize {
			sa.window = 1
		} else {
			sa.window = sa.window<<shift | 1
		}
		sa.seq = seq
		return
	}
	sa.window |= 1 << (sa.seq - seq)
}

// Revoke tears the SA down; all subsequent Seal/Open calls fail. Keylime
// uses this to cryptographically ban a compromised node (§7.4).
func (sa *SA) Revoke() {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	sa.revoked = true
}

// Revoked reports whether the SA has been revoked.
func (sa *SA) Revoked() bool {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return sa.revoked
}

// Endpoint is one end of a host-to-host tunnel, holding an outbound and
// an inbound SA.
type Endpoint struct {
	Out *SA
	In  *SA
}

// NewPair creates the two endpoints of a tunnel keyed by a pre-shared
// master key, mirroring the paper's PSK Strongswan configuration. Each
// end holds its own SA state per direction (outbound counter on the
// sender, replay window on the receiver) derived from the same keys.
func NewPair(suite Suite, masterKey []byte) (a, b *Endpoint, err error) {
	spi := sharedSPI(masterKey)
	abOut, err := newSA(suite, masterKey, spi, "a->b")
	if err != nil {
		return nil, nil, err
	}
	baOut, err := newSA(suite, masterKey, spi+1, "b->a")
	if err != nil {
		return nil, nil, err
	}
	return &Endpoint{Out: abOut, In: baOut.clone()},
		&Endpoint{Out: baOut, In: abOut.clone()}, nil
}

// clone copies an SA's keys and identity with fresh sequencing state.
func (sa *SA) clone() *SA {
	return &SA{spi: sa.spi, aead: sa.aead, salt: sa.salt}
}

// sharedSPI derives a deterministic SPI pair base from the key.
func sharedSPI(key []byte) uint32 {
	d := sha256.Sum256(append([]byte("spi"), key...))
	return binary.BigEndian.Uint32(d[:4]) | 0x100 // avoid reserved SPIs 0-255
}

// Send seals a payload on the endpoint's outbound SA.
func (e *Endpoint) Send(payload []byte) ([]byte, error) { return e.Out.Seal(payload) }

// Recv opens a packet on the endpoint's inbound SA.
func (e *Endpoint) Recv(pkt []byte) ([]byte, error) { return e.In.Open(pkt) }

// Revoke tears down both directions.
func (e *Endpoint) Revoke() {
	e.Out.Revoke()
	e.In.Revoke()
}

// RekeyPair replaces both endpoints' SAs with fresh ones derived from
// newKey, resetting sequence numbers, replay windows and lifetime
// counters. Both ends must rekey together (IKE does this negotiation in
// a real deployment; Bolted's Keylime verifier can distribute the new
// key the same way it distributed the first).
func RekeyPair(a, b *Endpoint, suite Suite, newKey []byte) error {
	na, nb, err := NewPair(suite, newKey)
	if err != nil {
		return err
	}
	a.Out, a.In = na.Out, na.In
	b.Out, b.In = nb.Out, nb.In
	return nil
}

// NewMasterKey generates a fresh random 32-byte pre-shared key.
func NewMasterKey() []byte {
	k := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		panic("ipsec: entropy source failed: " + err.Error())
	}
	return k
}

// SegmentStream seals a byte stream as MTU-sized ESP packets, returning
// the packets. This is the data path the Figure 3b iperf-style benchmark
// measures.
func SegmentStream(e *Endpoint, stream []byte, mtu int) ([][]byte, error) {
	payloadPer := mtu - HeaderOverhead - TagOverhead - 40
	if payloadPer < 1 {
		return nil, fmt.Errorf("ipsec: MTU %d too small", mtu)
	}
	var pkts [][]byte
	for off := 0; off < len(stream); off += payloadPer {
		end := off + payloadPer
		if end > len(stream) {
			end = len(stream)
		}
		p, err := e.Send(stream[off:end])
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, p)
	}
	return pkts, nil
}

// ReassembleStream opens a packet sequence back into the byte stream.
func ReassembleStream(e *Endpoint, pkts [][]byte) ([]byte, error) {
	var out []byte
	for _, p := range pkts {
		pl, err := e.Recv(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pl...)
	}
	return out, nil
}
