package core

// Profile is a tenant's security posture — the §4.3 use cases. Bolted's
// thesis is that this is a per-tenant choice, not a provider-wide one:
// Alice pays for none of it, Charlie buys all of it, and the provider
// runs the same cloud for both.
type Profile struct {
	Name string
	// Attest requires airlock attestation before a node joins the
	// enclave (protection from previous tenants' firmware implants).
	Attest bool
	// TenantVerifier deploys the tenant's own Keylime verifier instead
	// of trusting the provider's (Charlie). Requires Attest.
	TenantVerifier bool
	// EncryptDisk runs LUKS over the network-mounted boot volume.
	EncryptDisk bool
	// EncryptNetwork runs IPsec between enclave nodes and to storage.
	EncryptNetwork bool
	// ContinuousAttest keeps IMA runtime attestation running after
	// boot. Requires a tenant-generated whitelist, hence TenantVerifier.
	ContinuousAttest bool
}

// The paper's three example tenants.
var (
	// ProfileAlice is the graduate student: maximum speed, minimum
	// cost, trusts everyone. No attestation, no encryption.
	ProfileAlice = Profile{Name: "alice"}

	// ProfileBob is the professor: does not trust other tenants but
	// trusts the provider. Provider-deployed attestation protects him
	// from previous occupants; no encryption overhead.
	ProfileBob = Profile{Name: "bob", Attest: true}

	// ProfileCharlie is the security-sensitive tenant: tenant-deployed
	// attestation and provisioning, disk and network encryption, and
	// continuous runtime attestation. Trusts the provider only for
	// availability and physical security.
	ProfileCharlie = Profile{
		Name:             "charlie",
		Attest:           true,
		TenantVerifier:   true,
		EncryptDisk:      true,
		EncryptNetwork:   true,
		ContinuousAttest: true,
	}
)

// ProfileByName resolves one of the paper's example tenants by name —
// the wire form a /v1 tenant selects a posture with.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "alice":
		return ProfileAlice, true
	case "bob":
		return ProfileBob, true
	case "charlie":
		return ProfileCharlie, true
	}
	return Profile{}, false
}

// Validate reports profile inconsistencies.
func (p Profile) Validate() error {
	switch {
	case p.ContinuousAttest && !p.TenantVerifier:
		return errProfile("continuous attestation requires a tenant-deployed verifier (runtime whitelists are tenant-generated, §4.1)")
	case p.TenantVerifier && !p.Attest:
		return errProfile("a tenant verifier is useless without attestation")
	case p.EncryptDisk && !p.Attest:
		return errProfile("disk encryption requires attestation (the LUKS key is delivered in the attested payload)")
	default:
		return nil
	}
}

type errProfile string

func (e errProfile) Error() string { return "core: invalid profile: " + string(e) }
