package core

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies enclave life-cycle events.
type EventKind string

// Journal event kinds, one per Figure-1 transition plus runtime events.
const (
	EvAllocated   EventKind = "allocated"   // node reserved from the free pool
	EvAirlocked   EventKind = "airlocked"   // moved into the airlock
	EvBooting     EventKind = "booting"     // powered on, firmware runtime coming up
	EvAttesting   EventKind = "attesting"   // registered, quote in flight
	EvAttested    EventKind = "attested"    // passed boot attestation
	EvWarm        EventKind = "warm"        // parked as a pre-attested standby in the warm pool
	EvRejected    EventKind = "rejected"    // failed a lifecycle phase -> rejected pool
	EvJoined      EventKind = "joined"      // member of the tenant enclave
	EvProvisioned EventKind = "provisioned" // remote volume + disk stack ready
	EvBooted      EventKind = "booted"      // kexec'd into the tenant kernel
	EvRevoked     EventKind = "revoked"     // runtime violation, keys revoked
	EvQuarantined EventKind = "quarantined" // revoked member torn out of the enclave
	EvRekeyed     EventKind = "rekeyed"     // enclave-wide IPsec PSK rotated
	EvHealed      EventKind = "healed"      // replacement node restored target size
	EvDegraded    EventKind = "degraded"    // self-healing failed; running below target
	EvReleased    EventKind = "released"    // returned to the free pool
	EvStateSaved  EventKind = "state-saved" // volume preserved as an image
)

// Event is one journal record.
type Event struct {
	At     time.Time
	Kind   EventKind
	Node   string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %-12s %s %s", e.At.Format("15:04:05.000"), e.Kind, e.Node, e.Detail)
}

// Journal is an append-only audit log of enclave operations. Security-
// sensitive tenants want an audit trail of exactly when each machine
// was trusted, by whom, and why it left.
type Journal struct {
	mu       sync.Mutex
	events   []Event
	watchers map[int]func(Event)
	watchSeq int
}

func (j *Journal) record(kind EventKind, node, detail string) {
	ev := Event{At: time.Now(), Kind: kind, Node: node, Detail: detail}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	// Watchers run under j.mu so every watcher sees events in journal
	// order. They must be fast and must not record into this journal.
	for _, fn := range j.watchers {
		fn(ev)
	}
}

// Record appends an event to the journal. Subsystems layered above the
// enclave core — the runtime attestation guard — use this to weave
// their own events (healed, degraded) into the enclave's audit trail.
func (j *Journal) Record(kind EventKind, node, detail string) {
	j.record(kind, node, detail)
}

// Watch registers fn to be called, in journal order, with every event
// recorded after this call. The returned func unsubscribes. Operations
// use this to fan the lifecycle journal out to pollers and streams;
// fn runs synchronously inside record, so it must be fast and must not
// record into the same journal.
func (j *Journal) Watch(fn func(Event)) (cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.watchers == nil {
		j.watchers = make(map[int]func(Event))
	}
	id := j.watchSeq
	j.watchSeq++
	j.watchers[id] = fn
	return func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		delete(j.watchers, id)
	}
}

// Events returns a copy of the journal.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// EventsSince returns a copy of the events past cursor — what a
// long-lived streamer should call per wake-up instead of re-copying
// the whole journal.
func (j *Journal) EventsSince(cursor int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[cursor:]...)
}

// ByNode returns the events for one node, in order.
func (j *Journal) ByNode(node string) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of a kind were recorded.
func (j *Journal) Count(kind EventKind) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
