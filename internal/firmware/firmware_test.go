package firmware

import (
	"bytes"
	"testing"

	"bolted/internal/tpm"
)

var heads = BuildLinuxBoot("heads-v1", []byte("linuxboot source tree v1"))

func newUEFIMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine("node1", "port1", NewUEFI("dell", "2.9.1", "r630"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newLinuxBootMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := NewMachine("node2", "port2", NewLinuxBoot(heads, "r630"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeterministicBuild(t *testing.T) {
	a := BuildLinuxBoot("v1", []byte("source"))
	b := BuildLinuxBoot("v1", []byte("source"))
	if a.Digest != b.Digest {
		t.Fatal("identical source produced different images")
	}
	c := BuildLinuxBoot("v1", []byte("source with backdoor"))
	if c.Digest == a.Digest {
		t.Fatal("different source produced identical images")
	}
}

func TestPowerLifecycle(t *testing.T) {
	m := newLinuxBootMachine(t)
	if m.Powered() || m.Layer() != LayerOff {
		t.Fatal("fresh machine not off")
	}
	if err := m.PowerOn(); err != nil {
		t.Fatal(err)
	}
	if !m.Powered() || m.Layer() != LayerFirmware {
		t.Fatalf("after PowerOn: powered=%v layer=%s", m.Powered(), m.Layer())
	}
	if err := m.PowerOn(); err == nil {
		t.Fatal("double PowerOn accepted")
	}
	if err := m.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if err := m.PowerOff(); err == nil {
		t.Fatal("double PowerOff accepted")
	}
	if err := m.PowerCycle(); err != nil {
		t.Fatal(err)
	}
	if m.Layer() != LayerFirmware {
		t.Fatal("PowerCycle did not reach firmware")
	}
}

func TestLinuxBootScrubsMemoryUEFIDoesNot(t *testing.T) {
	// The paper's after-occupancy guarantee: a previous tenant's DRAM
	// secrets survive a power cycle under stock UEFI but not under
	// LinuxBoot.
	uefi := newUEFIMachine(t)
	uefi.PowerOn()
	uefi.Memory().Store("tenantA-key", []byte("hunter2"))
	uefi.PowerCycle()
	if _, ok := uefi.Memory().Load("tenantA-key"); !ok {
		t.Fatal("UEFI unexpectedly scrubbed memory (model should err toward the attacker)")
	}

	lb := newLinuxBootMachine(t)
	lb.PowerOn()
	lb.Memory().Store("tenantA-key", []byte("hunter2"))
	lb.PowerCycle()
	if _, ok := lb.Memory().Load("tenantA-key"); ok {
		t.Fatal("LinuxBoot did not scrub previous tenant's memory")
	}
}

func TestMeasuredBootPCRs(t *testing.T) {
	m := newLinuxBootMachine(t)
	m.PowerOn()
	want := ExpectedPCRs(m.Firmware(), nil)
	got, _ := m.TPM().PCRValue(PCRPlatform)
	if got != want[PCRPlatform] {
		t.Fatal("PCRPlatform does not match expected whitelist value")
	}
	// Power cycling reproduces the same value (whitelist is stable).
	m.PowerCycle()
	got2, _ := m.TPM().PCRValue(PCRPlatform)
	if got2 != got {
		t.Fatal("PCR value not reproducible across boots")
	}
}

func TestCompromisedFirmwareChangesPCR(t *testing.T) {
	m := newLinuxBootMachine(t)
	m.PowerOn()
	clean, _ := m.TPM().PCRValue(PCRPlatform)

	evil := BuildLinuxBoot("heads-v1", []byte("linuxboot source tree v1 + implant"))
	m.ReflashFirmware(NewLinuxBoot(evil, "r630"))
	m.PowerCycle()
	dirty, _ := m.TPM().PCRValue(PCRPlatform)
	if dirty == clean {
		t.Fatal("compromised firmware produced identical PCR (attestation cannot detect it)")
	}
}

func TestNetworkBootChain(t *testing.T) {
	m := newUEFIMachine(t)
	m.PowerOn()
	m.Memory().Store("previous-tenant", []byte("leftover"))
	if err := NetworkBootRuntime(m, heads); err != nil {
		t.Fatal(err)
	}
	// The chain measured iPXE and the runtime.
	want := ExpectedPCRs(m.Firmware(), &heads)
	gotPlat, _ := m.TPM().PCRValue(PCRPlatform)
	gotBoot, _ := m.TPM().PCRValue(PCRBootloader)
	if gotPlat != want[PCRPlatform] || gotBoot != want[PCRBootloader] {
		t.Fatal("network boot PCRs do not match whitelist")
	}
	// Heads entry scrubbed memory.
	if _, ok := m.Memory().Load("previous-tenant"); ok {
		t.Fatal("downloaded runtime did not scrub memory")
	}
}

func TestNetworkBootRequiresFirmwareLayer(t *testing.T) {
	m := newUEFIMachine(t)
	if err := NetworkBootRuntime(m, heads); err == nil {
		t.Fatal("network boot on powered-off machine accepted")
	}
	m.PowerOn()
	NetworkBootRuntime(m, heads)
	if err := m.Kexec("k1", []byte("kernel"), []byte("initrd")); err != nil {
		t.Fatal(err)
	}
	if err := NetworkBootRuntime(m, heads); err == nil {
		t.Fatal("network boot from tenant kernel accepted")
	}
}

func TestTamperedRuntimeDetectable(t *testing.T) {
	m1 := newUEFIMachine(t)
	m1.PowerOn()
	NetworkBootRuntime(m1, heads)
	clean, _ := m1.TPM().PCRValue(PCRBootloader)

	evil := BuildLinuxBoot("heads-v1", []byte("evil runtime"))
	m2 := newUEFIMachine(t)
	m2.PowerOn()
	NetworkBootRuntime(m2, evil)
	dirty, _ := m2.TPM().PCRValue(PCRBootloader)
	if clean == dirty {
		t.Fatal("substituted runtime not reflected in PCR")
	}
}

func TestKexecMeasuresKernel(t *testing.T) {
	m := newLinuxBootMachine(t)
	m.PowerOn()
	kernel := []byte("vmlinuz-4.17.9")
	initrd := []byte("initramfs")
	if err := m.Kexec("fedora28", kernel, initrd); err != nil {
		t.Fatal(err)
	}
	if m.Layer() != LayerTenantKernel || m.KernelID() != "fedora28" {
		t.Fatalf("layer=%s kernel=%s", m.Layer(), m.KernelID())
	}
	// Kernel and initrd are in the event log under PCRKernel.
	log := m.TPM().EventLog()
	found := 0
	for _, ev := range log {
		if ev.PCR == PCRKernel {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("PCRKernel events = %d, want 2", found)
	}
	// A different kernel yields a different PCR: malicious reboots into
	// unauthorized kernels are detectable.
	m2 := newLinuxBootMachine(t)
	m2.PowerOn()
	m2.Kexec("fedora28", []byte("trojaned kernel"), initrd)
	a, _ := m.TPM().PCRValue(PCRKernel)
	b, _ := m2.TPM().PCRValue(PCRKernel)
	if a == b {
		t.Fatal("kernel substitution not reflected in PCRKernel")
	}
}

func TestKexecRequiresFirmware(t *testing.T) {
	m := newLinuxBootMachine(t)
	if err := m.Kexec("k", nil, nil); err == nil {
		t.Fatal("kexec while off accepted")
	}
	m.PowerOn()
	m.Kexec("k", []byte("a"), []byte("b"))
	if err := m.Kexec("k2", []byte("c"), []byte("d")); err == nil {
		t.Fatal("double kexec from tenant kernel accepted")
	}
}

func TestPOSTTimes(t *testing.T) {
	if NewUEFI("d", "1", "g").POSTTime() <= NewLinuxBoot(heads, "g").POSTTime() {
		t.Fatal("UEFI POST not slower than LinuxBoot")
	}
	if UEFIPOSTTime/LinuxBootPOSTTime < 3 {
		t.Fatal("paper's 3x POST advantage not modelled")
	}
}

func TestMemoryModel(t *testing.T) {
	mem := NewMemory()
	mem.Store("a", []byte{1})
	mem.Store("b", []byte{2})
	if mem.Resident() != 2 {
		t.Fatal("resident count wrong")
	}
	d, ok := mem.Load("a")
	if !ok || !bytes.Equal(d, []byte{1}) {
		t.Fatal("load mismatch")
	}
	mem.Scrub()
	if mem.Resident() != 0 {
		t.Fatal("scrub incomplete")
	}
}

func TestExpectedPCRsZeroBootloaderWithoutNetBoot(t *testing.T) {
	want := ExpectedPCRs(NewLinuxBoot(heads, "g"), nil)
	if want[PCRBootloader] != (tpm.Digest{}) {
		t.Fatal("flash boot should leave PCRBootloader zero")
	}
}
