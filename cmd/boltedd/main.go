// Command boltedd runs a demo Bolted cloud and serves the full service
// plane over HTTP — HIL at /, BMI at /bmi/, the Keylime registrar at
// /registrar/, the node plane at /plane/ and the versioned tenant
// control plane at /v1/ — so boltedctl, curl, or a bolted.Dial tenant
// can drive everything from allocation to a full end-to-end enclave
// batch the way tenant tooling drives a real deployment. The /v1 plane
// hosts the orchestrator server-side: enclaves are named resources and
// batch acquisitions run as asynchronous Operations tenants poll,
// stream, or cancel.
//
// With -data-dir the control plane is durable: every mutation commits
// to a write-ahead log before it is acknowledged, and a restart
// recovers the recorded enclaves — re-adopting each recorded node by a
// fresh attestation quote (never by trusting recorded state) — then
// resumes journal sequence numbers so tenant ?after= cursors keep
// working across the restart.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/guard"
	"bolted/internal/ipsec"
	"bolted/internal/luks"
	"bolted/internal/obs"
	"bolted/internal/remote"
	"bolted/internal/store"
)

// newObsMux serves the operator observability plane on its own
// listener, off the tenant-facing surface: Prometheus exposition at
// /metrics, the runtime profiler under /debug/pprof/, and expvar at
// /debug/vars.
func newObsMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address for the service plane")
	nodes := flag.Int("nodes", 4, "number of bare-metal nodes")
	fw := flag.String("firmware", "linuxboot", "node flash firmware: linuxboot or uefi")
	dataDir := flag.String("data-dir", "", "directory for the durable control-plane store (WAL + snapshots); empty runs in-memory")
	metricsAddr := flag.String("metrics-addr", "", "listen address for the observability plane (/metrics, /debug/pprof/, /debug/vars); empty disables it")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Firmware = core.FirmwareKind(*fw)
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		log.Fatalf("boltedd: %v", err)
	}

	// The registry attaches before any enclave, pool or store exists, so
	// every subsystem resolves live instruments. Without -metrics-addr
	// the cloud stays uninstrumented: nil-registry instruments no-op.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		cloud.SetMetrics(reg)
		luks.SetMetrics(reg)
		ipsec.SetMetrics(reg)
	}
	// Resilience wraps the backends after metrics attach so breaker and
	// retry instruments resolve live. Defaults apply; operators tune the
	// policy at runtime over PUT /v1/resilience or boltedctl.
	if err := cloud.EnableResilience(core.ResiliencePolicy{}); err != nil {
		log.Fatalf("boltedd: enable resilience: %v", err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", bmi.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200.fc28"),
		Initrd:   []byte("initramfs-4.17.9-200.fc28"),
		Cmdline:  "root=iscsi ima_policy=tcb",
	}); err != nil {
		log.Fatalf("boltedd: seed image: %v", err)
	}

	var mgr *core.Manager
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			log.Fatalf("boltedd: open store: %v", err)
		}
		mgr = core.NewManagerWithStore(cloud, st)
		// Recovery happens before the listener opens: tenants never see
		// a half-recovered control plane.
		report, err := mgr.Recover(context.Background())
		if err != nil {
			log.Fatalf("boltedd: recover: %v", err)
		}
		if report.Enclaves > 0 {
			log.Printf("boltedd: recovered %d enclave(s): %d node(s) re-adopted by fresh quote, %d rejected, %d restored quarantined, %d released, %d operation(s) interrupted",
				report.Enclaves, len(report.Readopted), len(report.Rejected), len(report.Quarantined), len(report.Released), len(report.Interrupted))
			if len(report.Readopted) > 0 {
				log.Printf("boltedd: re-adopted: %s", strings.Join(report.Readopted, ", "))
			}
		}
		if _, errs := guard.Restore(mgr); errs != nil {
			for enclave, err := range errs {
				log.Printf("boltedd: restore guard for %s: %v", enclave, err)
			}
		}
	} else {
		mgr = core.NewManager(cloud)
	}

	handler, err := remote.NewHandlerWithManager(cloud, mgr)
	if err != nil {
		log.Fatalf("boltedd: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       15 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		// The /v1 wait and event-stream handlers clear their own write
		// deadlines per request; everything else stays bounded.
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var obsSrv *http.Server
	if reg != nil {
		obsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           newObsMux(reg),
			ReadHeaderTimeout: 5 * time.Second,
			// No WriteTimeout: /debug/pprof/profile streams for its whole
			// sample window (30s default, longer via ?seconds=).
			IdleTimeout: 2 * time.Minute,
		}
		go func() {
			if err := obsSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("boltedd: observability plane: %v", err)
			}
		}()
		log.Printf("boltedd: metrics at http://%s/metrics, profiler at http://%s/debug/pprof/", *metricsAddr, *metricsAddr)
	}

	free, _ := cloud.HIL.FreeNodes()
	log.Printf("boltedd: %d %s nodes; HIL at http://%s/, BMI at http://%s/bmi/, registrar at http://%s/registrar/, node plane at http://%s/plane/, control plane at http://%s/v1/",
		*nodes, *fw, *addr, *addr, *addr, *addr, *addr)
	log.Printf("boltedd: free nodes: %v", free)

	// drainObs gives the operator listener its own bounded drain: an
	// in-flight /metrics scrape or pprof profile finishes (or the
	// deadline cuts it) no matter which path brought the daemon down.
	drainObs := func() {
		if obsSrv == nil {
			return
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = obsSrv.Shutdown(shutCtx)
	}

	select {
	case err := <-errc:
		drainObs()
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("boltedd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("boltedd: signal received, draining connections")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("boltedd: forced shutdown: %v", err)
		}
		drainObs()
	}
	if *dataDir != "" {
		// Clean exit: checkpoint a snapshot (restart replays no WAL) and
		// flush + close the store.
		if err := mgr.Close(); err != nil {
			log.Printf("boltedd: close store: %v", err)
		}
	}
	log.Printf("boltedd: stopped")
}
