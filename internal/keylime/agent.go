package keylime

import (
	"context"
	"crypto/ecdh"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"

	"bolted/internal/firmware"
	"bolted/internal/ima"
	"bolted/internal/netsim"
	"bolted/internal/tpm"
)

// Agent runs on the node being attested. During the airlock phase it is
// part of the downloaded LinuxBoot runtime; after kexec it runs inside
// the tenant OS feeding IMA measurement lists to the verifier. All
// remote interactions verify switch-fabric reachability first, so the
// airlock wiring is actually load-bearing: an agent cut off from the
// attestation network cannot register or be attested.
type Agent struct {
	uuid    string
	machine *firmware.Machine
	fabric  *netsim.Fabric

	mu      sync.Mutex
	u, v    []byte
	sealed  []byte
	payload *Payload
	imaCol  *ima.Collector
}

// NewAgent attaches an agent to a machine.
func NewAgent(uuid string, m *firmware.Machine, fabric *netsim.Fabric) *Agent {
	return &Agent{uuid: uuid, machine: m, fabric: fabric}
}

// UUID returns the agent identity (node name in Bolted).
func (a *Agent) UUID() string { return a.uuid }

// Port returns the node's switch port.
func (a *Agent) Port() string { return a.machine.Port() }

// Machine returns the underlying machine (tenant-side orchestration
// uses it for kexec).
func (a *Agent) Machine() *firmware.Machine { return a.machine }

// EKPublic returns the node TPM's endorsement key.
func (a *Agent) EKPublic() *ecdh.PublicKey { return a.machine.TPM().EKPublic() }

// AIKPublic returns the node TPM's attestation key.
func (a *Agent) AIKPublic() *ecdsa.PublicKey { return a.machine.TPM().AIKPublic() }

// checkPath models the agent's network dependency: the peer's port must
// share a VLAN with the node.
func (a *Agent) checkPath(peerPort string) error {
	if a.fabric == nil {
		return nil
	}
	return a.fabric.CheckReachable(a.Port(), peerPort)
}

// RegisterWith performs the full enrolment dance against a registrar
// reachable on registrarPort: submit EK+AIK, activate the returned
// credential in the TPM, return the proof. The registrar may be
// in-process or a RegistrarClient for a remote enrolment endpoint.
func (a *Agent) RegisterWith(ctx context.Context, r RegistrarConn, registrarPort string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("keylime: %w", err)
	}
	if err := a.checkPath(registrarPort); err != nil {
		return fmt.Errorf("keylime: agent cannot reach registrar: %w", err)
	}
	blob, err := r.Register(a.uuid, a.EKPublic(), a.AIKPublic())
	if err != nil {
		return err
	}
	secret, err := a.machine.TPM().ActivateCredential(blob)
	if err != nil {
		return fmt.Errorf("keylime: credential activation failed: %w", err)
	}
	return r.Activate(a.uuid, activationProof(secret, a.uuid))
}

// Quote produces a TPM quote for a verifier-chosen nonce, over the boot
// PCRs plus the IMA PCR.
func (a *Agent) Quote(nonce []byte, sel []int, verifierPort string) (*tpm.Quote, error) {
	if err := a.checkPath(verifierPort); err != nil {
		return nil, fmt.Errorf("keylime: agent cannot reach verifier: %w", err)
	}
	return a.machine.TPM().Quote(nonce, sel)
}

// ReceiveU accepts the tenant's key share.
func (a *Agent) ReceiveU(u []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.u = append([]byte(nil), u...)
}

// ReceiveV accepts the verifier's key share plus the sealed payload
// (released only after attestation passes).
func (a *Agent) ReceiveV(v, sealedPayload []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.v = append([]byte(nil), v...)
	a.sealed = append([]byte(nil), sealedPayload...)
}

// Unwrap combines U and V into the bootstrap key and opens the payload.
// It fails until both shares have arrived.
func (a *Agent) Unwrap() (*Payload, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.payload != nil {
		return a.payload, nil
	}
	if a.u == nil || a.v == nil {
		return nil, errors.New("keylime: key shares incomplete (attestation not finished?)")
	}
	k, err := CombineKey(a.u, a.v)
	if err != nil {
		return nil, err
	}
	p, err := OpenPayload(k, a.sealed)
	if err != nil {
		return nil, err
	}
	a.payload = p
	return p, nil
}

// AttachIMA connects the tenant OS's IMA collector for continuous
// attestation (called after kexec into the tenant kernel).
func (a *Agent) AttachIMA(c *ima.Collector) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.imaCol = c
}

// IMAList returns the current measurement list (empty before the tenant
// OS attaches IMA).
func (a *Agent) IMAList() []ima.Entry {
	a.mu.Lock()
	c := a.imaCol
	a.mu.Unlock()
	if c == nil {
		return nil
	}
	return c.List()
}
