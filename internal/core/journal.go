package core

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies enclave life-cycle events.
type EventKind string

// Journal event kinds, one per Figure-1 transition plus runtime events.
const (
	EvAllocated   EventKind = "allocated"    // node reserved from the free pool
	EvAirlocked   EventKind = "airlocked"    // moved into the airlock
	EvBooting     EventKind = "booting"      // powered on, firmware runtime coming up
	EvAttesting   EventKind = "attesting"    // registered, quote in flight
	EvAttested    EventKind = "attested"     // passed boot attestation
	EvWarm        EventKind = "warm"         // parked as a pre-attested standby in the warm pool
	EvRejected    EventKind = "rejected"     // failed a lifecycle phase -> rejected pool
	EvJoined      EventKind = "joined"       // member of the tenant enclave
	EvProvisioned EventKind = "provisioned"  // remote volume + disk stack ready
	EvBooted      EventKind = "booted"       // kexec'd into the tenant kernel
	EvRevoked     EventKind = "revoked"      // runtime violation, keys revoked
	EvQuarantined EventKind = "quarantined"  // revoked member torn out of the enclave
	EvRekeyed     EventKind = "rekeyed"      // enclave-wide IPsec PSK rotated
	EvHealed      EventKind = "healed"       // replacement node restored target size
	EvDegraded    EventKind = "degraded"     // self-healing failed; running below target
	EvGuardPaused EventKind = "guard-paused" // guard checks suspended: registrar breaker open
	EvReclaimed   EventKind = "reclaimed"    // rejected node scrubbed and returned to the free pool
	EvReleased    EventKind = "released"     // returned to the free pool
	EvStateSaved  EventKind = "state-saved"  // volume preserved as an image
	EvRecovered   EventKind = "recovered"    // re-adopted (or restored) by crash recovery
)

// Event is one journal record. Seq is 1-based, strictly increasing, and
// stable across control-plane restarts (restored from the durable store), so
// it doubles as the resume cursor for NDJSON event feeds.
type Event struct {
	Seq    uint64
	At     time.Time
	Kind   EventKind
	Node   string
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s %-12s %s %s", e.At.Format("15:04:05.000"), e.Kind, e.Node, e.Detail)
}

// Journal is an append-only audit log of enclave operations. Security-
// sensitive tenants want an audit trail of exactly when each machine
// was trusted, by whom, and why it left.
//
// When a persist hook is attached (durable Manager), every event commits to
// the store before it is assigned a sequence number and fanned out — a
// client can never hold a cursor for an event that would not survive a
// crash. A persist failure is sticky: the journal stops accepting events and
// lifecycle transitions fail closed.
type Journal struct {
	mu       sync.Mutex
	events   []Event
	seq      uint64 // last assigned sequence number
	watchers map[int]func(Event)
	watchSeq int
	persist  func(Event) error
	fail     error // sticky persist failure
}

func (j *Journal) record(kind EventKind, node, detail string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return
	}
	ev := Event{Seq: j.seq + 1, At: time.Now(), Kind: kind, Node: node, Detail: detail}
	if j.persist != nil {
		if err := j.persist(ev); err != nil {
			j.fail = fmt.Errorf("core: journal persist: %w", err)
			return
		}
	}
	j.seq = ev.Seq
	j.events = append(j.events, ev)
	// Watchers run under j.mu so every watcher sees events in journal
	// order. They must be fast and must not record into this journal.
	for _, fn := range j.watchers {
		fn(ev)
	}
}

// setPersist attaches the durable commit hook. The hook runs under the
// journal lock, so commits are made in event order.
func (j *Journal) setPersist(fn func(Event) error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.persist = fn
}

// Err reports the sticky persist failure, if any. Once set, no further
// events are recorded: the enclave's audit trail is frozen and lifecycle
// transitions fail closed rather than running unjournaled.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fail
}

// restore reloads a recovered journal: the persisted events verbatim, the
// sequence counters they left off at, and the watcher-id seed (persisted so
// watcher ids handed out before a restart never collide after recovery).
func (j *Journal) restore(events []Event, watchSeq int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append([]Event(nil), events...)
	j.seq = 0
	if n := len(events); n > 0 {
		j.seq = events[n-1].Seq
	}
	if watchSeq > j.watchSeq {
		j.watchSeq = watchSeq
	}
}

// seqs returns (last event seq, watcher-id seed) for checkpointing.
func (j *Journal) seqs() (uint64, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.watchSeq
}

// Record appends an event to the journal. Subsystems layered above the
// enclave core — the runtime attestation guard — use this to weave
// their own events (healed, degraded) into the enclave's audit trail.
func (j *Journal) Record(kind EventKind, node, detail string) {
	j.record(kind, node, detail)
}

// Watch registers fn to be called, in journal order, with every event
// recorded after this call. The returned func unsubscribes. Operations
// use this to fan the lifecycle journal out to pollers and streams;
// fn runs synchronously inside record, so it must be fast and must not
// record into the same journal.
func (j *Journal) Watch(fn func(Event)) (cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.watchers == nil {
		j.watchers = make(map[int]func(Event))
	}
	id := j.watchSeq
	j.watchSeq++
	j.watchers[id] = fn
	return func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		delete(j.watchers, id)
	}
}

// Events returns a copy of the journal.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Event(nil), j.events...)
}

// EventsSince returns a copy of the events past cursor — what a
// long-lived streamer should call per wake-up instead of re-copying
// the whole journal.
func (j *Journal) EventsSince(cursor int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[cursor:]...)
}

// SinceSeq returns a copy of the events with Seq > after. Because seqs are
// restored across restarts, a cursor taken before a crash resumes exactly
// where it left off — no gaps, no duplicates.
func (j *Journal) SinceSeq(after uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := len(j.events)
	for i > 0 && j.events[i-1].Seq > after {
		i--
	}
	if i >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[i:]...)
}

// ByNode returns the events for one node, in order.
func (j *Journal) ByNode(node string) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	for _, e := range j.events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of a kind were recorded.
func (j *Journal) Count(kind EventKind) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
