// Package xts implements the XTS-AES mode of operation (IEEE P1619),
// the sector cipher used by LUKS/dm-crypt with the aes-xts-plain64
// specification. The Go standard library provides no XTS mode, so Bolted's
// LUKS substrate implements it here over crypto/aes.
//
// XTS uses two independent AES keys: one for data blocks, one to encrypt
// the sector number into the initial tweak. Each 16-byte block within a
// sector is whitened with the tweak before and after the block cipher, and
// the tweak is multiplied by alpha in GF(2^128) between blocks, so equal
// plaintext blocks at different positions produce unrelated ciphertext.
//
// Only whole-block sectors are supported (ciphertext stealing is not
// implemented); disk sectors are 512 or 4096 bytes, always a multiple of
// the AES block size.
package xts

import (
	"crypto/cipher"
	"encoding/binary"
	"errors"
)

const blockSize = 16

// BlockProcessor is implemented by block ciphers that can encrypt or
// decrypt several contiguous 16-byte blocks per call (softaes provides
// it). When the data cipher implements it, the batched sector API below
// hands it whole sectors at a time instead of one block per call.
type BlockProcessor interface {
	EncryptBlocks(dst, src []byte)
	DecryptBlocks(dst, src []byte)
}

// Cipher is an XTS-AES tweakable cipher over sectors. A Cipher holds no
// per-call state and is safe for concurrent use.
type Cipher struct {
	data  cipher.Block   // K1: encrypts data blocks
	tweak cipher.Block   // K2: encrypts the sector number
	multi BlockProcessor // non-nil when data supports batched blocks
}

// NewCipher creates an XTS cipher from a double-length key: the first
// half keys the data cipher, the second half the tweak cipher, matching
// the dm-crypt aes-xts key layout. Supported lengths are 32 (XTS-AES-128)
// and 64 (XTS-AES-256) bytes. The mkBlock function constructs the
// underlying block cipher (e.g. aes.NewCipher).
func NewCipher(mkBlock func(key []byte) (cipher.Block, error), key []byte) (*Cipher, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, errors.New("xts: key must be 32 or 64 bytes (double-length)")
	}
	half := len(key) / 2
	data, err := mkBlock(key[:half])
	if err != nil {
		return nil, err
	}
	tweak, err := mkBlock(key[half:])
	if err != nil {
		return nil, err
	}
	if data.BlockSize() != blockSize || tweak.BlockSize() != blockSize {
		return nil, errors.New("xts: underlying cipher must have 16-byte blocks")
	}
	c := &Cipher{data: data, tweak: tweak}
	c.multi, _ = data.(BlockProcessor)
	return c, nil
}

// mulAlpha multiplies the tweak by alpha in GF(2^128) using the XTS
// little-endian convention, operating on two 64-bit halves.
func mulAlpha(t *[blockSize]byte) {
	lo := binary.LittleEndian.Uint64(t[:8])
	hi := binary.LittleEndian.Uint64(t[8:])
	carry := hi >> 63
	hi = hi<<1 | lo>>63
	lo <<= 1
	lo ^= carry * 0x87
	binary.LittleEndian.PutUint64(t[:8], lo)
	binary.LittleEndian.PutUint64(t[8:], hi)
}

// initialTweak computes E_K2(sectorNum) with the sector number encoded
// little-endian in the low 8 bytes ("plain64").
func (c *Cipher) initialTweak(sectorNum uint64) [blockSize]byte {
	var t [blockSize]byte
	binary.LittleEndian.PutUint64(t[:8], sectorNum)
	c.tweak.Encrypt(t[:], t[:])
	return t
}

// EncryptSector encrypts plaintext into dst for the given sector number.
// dst and plaintext must have equal length, a positive multiple of 16
// bytes. dst may alias plaintext.
func (c *Cipher) EncryptSector(dst, plaintext []byte, sectorNum uint64) error {
	return c.process(dst, plaintext, sectorNum, c.data.Encrypt)
}

// DecryptSector decrypts ciphertext into dst for the given sector number.
func (c *Cipher) DecryptSector(dst, ciphertext []byte, sectorNum uint64) error {
	return c.process(dst, ciphertext, sectorNum, c.data.Decrypt)
}

// tweakChunkBlocks bounds the per-chunk tweak scratch: 256 blocks covers
// a whole 4 KiB sector per inner pass while keeping the buffer on the
// stack.
const tweakChunkBlocks = 256

// EncryptSectors encrypts a span of consecutive sectors in one call:
// len(src) must be a positive multiple of sectorSize (itself a positive
// multiple of 16), and sector numbers run firstSector, firstSector+1, …
// Tweak derivation and bounds checks are hoisted out of the block loop,
// and ciphers implementing BlockProcessor are handed whole chunks, so
// this is the fast path large sealed I/O should take. dst may alias src.
func (c *Cipher) EncryptSectors(dst, src []byte, sectorSize int, firstSector uint64) error {
	return c.processSectors(dst, src, sectorSize, firstSector, true)
}

// DecryptSectors is the decrypting counterpart of EncryptSectors.
func (c *Cipher) DecryptSectors(dst, src []byte, sectorSize int, firstSector uint64) error {
	return c.processSectors(dst, src, sectorSize, firstSector, false)
}

func (c *Cipher) processSectors(dst, src []byte, sectorSize int, firstSector uint64, encrypt bool) error {
	if sectorSize <= 0 || sectorSize%blockSize != 0 {
		return errors.New("xts: sector size must be a positive multiple of 16")
	}
	if len(src) == 0 || len(src)%sectorSize != 0 {
		return errors.New("xts: span length must be a positive multiple of the sector size")
	}
	if len(dst) != len(src) {
		return errors.New("xts: dst and src length mismatch")
	}
	var tw [tweakChunkBlocks * blockSize]byte
	sector := firstSector
	for off := 0; off < len(src); off += sectorSize {
		t := c.initialTweak(sector)
		s, d := src[off:off+sectorSize], dst[off:off+sectorSize]
		for len(s) > 0 {
			nb := len(s) / blockSize
			if nb > tweakChunkBlocks {
				nb = tweakChunkBlocks
			}
			chunk := nb * blockSize
			// Derive the tweak run for this chunk up front.
			for i := 0; i < chunk; i += blockSize {
				copy(tw[i:i+blockSize], t[:])
				mulAlpha(&t)
			}
			cs, cd := s[:chunk:chunk], d[:chunk:chunk]
			xorChunk(cd, cs, tw[:chunk])
			if c.multi != nil {
				if encrypt {
					c.multi.EncryptBlocks(cd, cd)
				} else {
					c.multi.DecryptBlocks(cd, cd)
				}
			} else {
				op := c.data.Encrypt
				if !encrypt {
					op = c.data.Decrypt
				}
				for i := 0; i < chunk; i += blockSize {
					op(cd[i:i+blockSize], cd[i:i+blockSize])
				}
			}
			xorChunk(cd, cd, tw[:chunk])
			s, d = s[chunk:], d[chunk:]
		}
		sector++
	}
	return nil
}

// xorChunk XORs src with the tweak stream into dst, eight bytes at a
// time. All three slices have equal, 16-aligned length.
func xorChunk(dst, src, tweaks []byte) {
	for i := 0; i+8 <= len(src); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(src[i:])^binary.LittleEndian.Uint64(tweaks[i:]))
	}
}

func (c *Cipher) process(dst, src []byte, sectorNum uint64, op func(dst, src []byte)) error {
	if len(src) == 0 || len(src)%blockSize != 0 {
		return errors.New("xts: sector length must be a positive multiple of 16")
	}
	if len(dst) != len(src) {
		return errors.New("xts: dst and src length mismatch")
	}
	t := c.initialTweak(sectorNum)
	for off := 0; off < len(src); off += blockSize {
		tl := binary.LittleEndian.Uint64(t[:8])
		th := binary.LittleEndian.Uint64(t[8:])
		in, out := src[off:off+blockSize], dst[off:off+blockSize]
		binary.LittleEndian.PutUint64(out[:8], binary.LittleEndian.Uint64(in[:8])^tl)
		binary.LittleEndian.PutUint64(out[8:], binary.LittleEndian.Uint64(in[8:])^th)
		op(out, out)
		binary.LittleEndian.PutUint64(out[:8], binary.LittleEndian.Uint64(out[:8])^tl)
		binary.LittleEndian.PutUint64(out[8:], binary.LittleEndian.Uint64(out[8:])^th)
		mulAlpha(&t)
	}
	return nil
}
