// Package bolted is a reproduction of the Bolted architecture from
// "Supporting Security Sensitive Tenants in a Bare-Metal Cloud"
// (Mosayyebzadeh et al., USENIX ATC 2019): a bare-metal cloud in which
// security-sensitive tenants control their own provisioning and
// attestation, trusting the provider only for physical security,
// availability, and a minimal (~3 KLOC) network isolation service.
//
// The package is a facade over the implementation packages:
//
//	internal/hil       Hardware Isolation Layer (the provider TCB)
//	internal/bmi       Bare Metal Imaging (diskless provisioning)
//	internal/keylime   remote attestation + key bootstrap
//	internal/firmware  UEFI / LinuxBoot machine + measured boot model
//	internal/core      enclave orchestration and timing models
//	internal/remote    the wire seam: full service plane over HTTP
//	internal/workload  the paper's evaluation workloads
//
// Quick start:
//
//	cloud, _ := bolted.NewCloud(bolted.DefaultConfig())
//	cloud.BMI.CreateOSImage("fedora28", bolted.OSImageSpec{ ... })
//	enclave, _ := bolted.NewEnclave(cloud, "myproj", bolted.ProfileCharlie)
//	node, err := enclave.AcquireNode(ctx, "fedora28")  // airlock → attest → boot
//
// Batches provision concurrently — nodes that fail a phase land in the
// provider's rejected pool while their siblings still allocate:
//
//	res, err := enclave.AcquireNodes(ctx, "fedora28", 16)
//	// res.Nodes, res.Failed, res.Timings (per-phase breakdown)
//
// See examples/ for runnable scenarios and EXPERIMENTS.md for the
// figure-by-figure reproduction of the paper's evaluation.
package bolted

import (
	"net/http"

	"bolted/internal/bmi"
	"bolted/internal/core"
	"bolted/internal/guard"
	"bolted/internal/obs"
	"bolted/internal/remote"
	"bolted/internal/store"
	"bolted/internal/workload"
)

// Cloud is a wired Bolted deployment: switch fabric, HIL, BMI over a
// Ceph-like store, a Keylime registrar, and the physical machines.
type Cloud = core.Cloud

// CloudConfig sizes a cloud (node count, flash firmware, storage pool).
type CloudConfig = core.CloudConfig

// Enclave is a tenant's secure pool of bare-metal servers.
type Enclave = core.Enclave

// Node is a server that has joined an enclave.
type Node = core.Node

// Profile is a tenant security posture (§4.3 of the paper).
type Profile = core.Profile

// FirmwareKind selects node flash firmware.
type FirmwareKind = core.FirmwareKind

// OSImageSpec describes a bootable OS image for BMI.
type OSImageSpec = bmi.OSImageSpec

// SecurityLevel is a provisioning-time security choice (Figure 4).
type SecurityLevel = core.SecurityLevel

// ProvisionConfig configures the provisioning-time simulation.
type ProvisionConfig = core.ProvisionConfig

// ProvisionResult is the simulation output (phases, per-node times).
type ProvisionResult = core.ProvisionResult

// BatchResult is the outcome of one concurrent AcquireNodes batch:
// allocated members, per-node failures routed to the rejected pool,
// and the per-phase timing breakdown.
type BatchResult = core.BatchResult

// NodeFailure records a node that left the provisioning pipeline
// before allocation (and which phase ended it).
type NodeFailure = core.NodeFailure

// BatchTimings is a batch's per-phase wall-clock breakdown, in the
// same phase vocabulary as SimulateProvisioning.
type BatchTimings = core.BatchTimings

// PhaseTiming aggregates one canonical phase across a batch.
type PhaseTiming = core.PhaseTiming

// NodeState is a node's position in the Figure-1 life cycle.
type NodeState = core.NodeState

// Figure-1 life-cycle states (plus the warm-pool standby state and the
// runtime guard's quarantine).
const (
	StateFree        = core.StateFree
	StateAirlocked   = core.StateAirlocked
	StateBooting     = core.StateBooting
	StateAttesting   = core.StateAttesting
	StateWarm        = core.StateWarm
	StateProvisioned = core.StateProvisioned
	StateAllocated   = core.StateAllocated
	StateRejected    = core.StateRejected
	StateQuarantined = core.StateQuarantined
)

// Canonical provisioning phase names, shared by real batch timings and
// the discrete-event simulation. The warm phases charge only what a
// pre-attested standby still owes: re-quote, HIL move, kexec.
const (
	PhaseAirlock       = core.PhaseAirlock
	PhaseBoot          = core.PhaseBoot
	PhaseAttest        = core.PhaseAttest
	PhaseProvision     = core.PhaseProvision
	PhaseWarmRequote   = core.PhaseWarmRequote
	PhaseWarmProvision = core.PhaseWarmProvision
)

// PoolPolicy configures an enclave's warm pool of pre-attested standby
// nodes: target occupancy, attestation airlock parallelism, and the
// background refiller's rate limit:
//
//	pol := bolted.DefaultPoolPolicy()
//	pol.Target = 4
//	enclave.ConfigurePool(pol)
//	// ... later: AcquireNodes drains standbys via the kexec fast path
type PoolPolicy = core.PoolPolicy

// PoolStats is a point-in-time view of an enclave's warm pool.
type PoolStats = core.PoolStats

// DefaultPoolPolicy returns the default warm-pool configuration
// (multi-airlock pipelining on, no standbys until Target is raised).
func DefaultPoolPolicy() PoolPolicy { return core.DefaultPoolPolicy() }

// DefaultAirlocks is the default attestation airlock parallelism (the
// paper's prototype had exactly one, its §7.3 limitation).
const DefaultAirlocks = core.DefaultAirlocks

// DefaultBatchParallelism bounds how many nodes AcquireNodes keeps in
// flight at once.
const DefaultBatchParallelism = core.DefaultBatchParallelism

// TenantQuota is a tenant's scheduling contract: its weighted-fair
// share of the attestation airlocks plus optional hard caps on total
// nodes and in-flight acquires.
type TenantQuota = core.TenantQuota

// QuotaStatus pairs a tenant's quota with its live usage.
type QuotaStatus = core.QuotaStatus

// SchedStats is a snapshot of the cloud-wide airlock scheduler.
type SchedStats = core.SchedStats

// QuotaError is an admission-control rejection carrying a Retry-After
// hint; errors.Is(err, ErrOverQuota) matches it.
type QuotaError = core.QuotaError

// ErrOverQuota marks acquisitions rejected by admission control
// (per-tenant caps or cloud-wide queue backpressure). Over /v1 it maps
// to HTTP 429 with a Retry-After header.
var ErrOverQuota = core.ErrOverQuota

// App is a macro-benchmark model (Figure 7).
type App = workload.App

// SecConfig is a runtime security configuration (LUKS/IPsec).
type SecConfig = workload.SecConfig

// Firmware kinds.
const (
	FirmwareUEFI      = core.FirmwareUEFI
	FirmwareLinuxBoot = core.FirmwareLinuxBoot
)

// Provisioning security levels.
const (
	SecNone     = core.SecNone
	SecAttested = core.SecAttested
	SecFull     = core.SecFull
)

// The paper's three example tenants.
var (
	// ProfileAlice trusts everyone: no attestation, no encryption.
	ProfileAlice = core.ProfileAlice
	// ProfileBob trusts the provider but not previous tenants:
	// provider-deployed attestation.
	ProfileBob = core.ProfileBob
	// ProfileCharlie trusts the provider only for availability:
	// tenant-deployed attestation, LUKS, IPsec, continuous attestation.
	ProfileCharlie = core.ProfileCharlie
)

// HILService is the orchestrator's narrow view of the Hardware
// Isolation Layer — satisfied in-process and over HTTP.
type HILService = core.HILService

// BMIService is the orchestrator's narrow view of Bare Metal Imaging.
type BMIService = core.BMIService

// NodeDriver covers the node-plane pipeline steps (runtime boot,
// agent lifecycle, kexec, runtime IMA).
type NodeDriver = core.NodeDriver

// NewCloud constructs and wires a cloud.
func NewCloud(cfg CloudConfig) (*Cloud, error) { return core.NewCloud(cfg) }

// Dial connects to a boltedd serving the full Bolted service plane and
// returns a Cloud whose HIL, BMI and Keylime registrar are HTTP
// clients against it. The returned Cloud runs the identical enclave
// pipeline — NewEnclave + AcquireNodes provision a concurrent batch
// entirely over the wire:
//
//	cloud, _ := bolted.Dial("http://127.0.0.1:8080")
//	enclave, _ := bolted.NewEnclave(cloud, "myproj", bolted.ProfileBob)
//	res, _ := enclave.AcquireNodes(ctx, "fedora28", 4)
func Dial(serverURL string) (*Cloud, error) { return remote.Dial(serverURL) }

// Client is the typed binding for boltedd's /v1 tenant control plane:
// enclaves as named server-side resources and batch acquisitions as
// asynchronous Operations the tenant polls, streams, or cancels —
// the surface for tenants that do not embed the orchestrator:
//
//	cli := bolted.NewClient("http://127.0.0.1:8080")
//	cli.CreateEnclave(ctx, "myproj", "bob")
//	op, _ := cli.Acquire(ctx, "myproj", "fedora28", 4) // returns immediately
//	done, _ := cli.WaitOperation(ctx, op.ID)           // or StreamEvents / CancelOperation
type Client = remote.V1Client

// NewClient returns a /v1 control-plane client for a boltedd base URL.
func NewClient(serverURL string) *Client { return remote.NewV1Client(serverURL) }

// EnclaveInfo is the control plane's wire form of an enclave resource.
type EnclaveInfo = remote.EnclaveInfo

// OperationInfo is the control plane's wire form of a long-running
// acquisition Operation.
type OperationInfo = remote.OperationInfo

// EventInfo is the control plane's wire form of one lifecycle journal
// event (the /v1/operations/{id}/events stream).
type EventInfo = remote.EventInfo

// MetricsRegistry is the dependency-free metrics registry behind the
// observability plane: atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition. Attach one to a cloud
// with Cloud.SetMetrics before serving traffic and mount
// MetricsRegistry.Handler() (boltedd serves it at /metrics via
// -metrics-addr):
//
//	reg := bolted.NewMetricsRegistry()
//	cloud.SetMetrics(reg)
//	http.Handle("/metrics", reg.Handler())
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SpanData is one recorded trace span: the operation root or one
// node × pipeline-phase interval, as served by
// /v1/operations/{id}/trace and Client.OperationTrace.
type SpanData = obs.SpanData

// Manager is the server-side control-plane registry: named enclaves
// plus the asynchronous Operations running against them. It powers the
// /v1 surface, and embedding programs can drive it in process.
type Manager = core.Manager

// Operation is one asynchronous batch acquisition tracked by a
// Manager.
type Operation = core.Operation

// OpPhase is an Operation's position in its life cycle.
type OpPhase = core.OpPhase

// Operation phases (OpDone, OpCancelled and OpInterrupted are
// terminal).
const (
	OpPending   = core.OpPending
	OpRunning   = core.OpRunning
	OpDone      = core.OpDone
	OpCancelled = core.OpCancelled
	// OpInterrupted marks an operation that was in flight when the
	// control plane crashed; recovery released its partially-held
	// nodes, and the client should re-submit under a fresh
	// idempotency key.
	OpInterrupted = core.OpInterrupted
)

// NewManager builds an empty control plane over a cloud.
func NewManager(c *Cloud) *Manager { return core.NewManager(c) }

// Store is the durable control-plane log: a write-ahead log of typed
// records plus periodic compacting snapshots. FileStore persists to a
// directory; MemoryStore keeps everything in memory (tests, demos).
type Store = store.Store

// FileStore is the on-disk Store: an append-only, fsync'd, CRC-framed
// WAL plus an atomically-replaced snapshot file. On open it truncates
// a torn or corrupted tail back to the last valid frame.
type FileStore = store.File

// MemoryStore is the in-memory Store.
type MemoryStore = store.Memory

// OpenStore opens (or creates) the durable control-plane store in a
// directory.
func OpenStore(dir string) (*FileStore, error) { return store.Open(dir) }

// NewManagerWithStore builds a control plane whose every mutation
// commits to st before it is acknowledged. Call Recover before serving
// to replay what the store recorded:
//
//	st, _ := bolted.OpenStore("/var/lib/bolted")
//	mgr := bolted.NewManagerWithStore(cloud, st)
//	report, _ := mgr.Recover(ctx)       // re-adopts nodes by fresh quote
//	bolted.RestoreGuards(mgr)           // restarts persisted guards
func NewManagerWithStore(c *Cloud, st Store) *Manager { return core.NewManagerWithStore(c, st) }

// RecoverReport summarizes one crash recovery: how many enclaves were
// restored and, node by node, what happened to each recorded machine —
// re-adopted by a fresh attestation quote, rejected (the re-quote
// failed), restored to quarantine, or released because it was caught
// mid-pipeline.
type RecoverReport = core.RecoverReport

// RestoreGuards re-enables the runtime attestation guards whose
// policies the store recorded, after Manager.Recover. It returns the
// restarted guards and, when some policies failed to restore, a
// per-enclave error map.
func RestoreGuards(mgr *Manager) ([]*Guard, map[string]error) { return guard.Restore(mgr) }

// Guard is the runtime attestation guard for one enclave (§7.4 as an
// automated subsystem): it drives periodic IMA rounds over every
// Allocated member and answers a verifier revocation with quarantine,
// an enclave-wide IPsec rekey, and — policy permitting — an attested
// replacement node:
//
//	g, _ := bolted.EnableGuard(mgr, "myproj", bolted.GuardPolicy{
//		SelfHeal: true, Image: "hardened",
//	})
type Guard = guard.Guard

// GuardPolicy configures a Guard (check interval, quote concurrency,
// failure tolerance, self-healing).
type GuardPolicy = guard.Policy

// GuardStatus is a point-in-time view of a Guard.
type GuardStatus = guard.Status

// EnableGuard attaches a runtime attestation guard to a managed
// enclave and starts its monitoring and response loops.
func EnableGuard(mgr *Manager, enclave string, p GuardPolicy) (*Guard, error) {
	return guard.Enable(mgr, enclave, p)
}

// Incident is one detected revocation and the guard's automated
// response to it, tracked by a Manager.
type Incident = core.Incident

// IncidentState is an incident's position in its response life cycle.
type IncidentState = core.IncidentState

// Incident states (Resolved, Degraded and Unhandled are terminal).
const (
	IncidentDetected   = core.IncidentDetected
	IncidentResponding = core.IncidentResponding
	IncidentResolved   = core.IncidentResolved
	IncidentDegraded   = core.IncidentDegraded
	IncidentUnhandled  = core.IncidentUnhandled
)

// EventKind classifies enclave lifecycle journal events.
type EventKind = core.EventKind

// Runtime-guard journal event kinds (the boot-time kinds are internal
// to the provisioner; these are the ones incident tooling matches on).
const (
	EventRevoked     = core.EvRevoked
	EventQuarantined = core.EvQuarantined
	EventRekeyed     = core.EvRekeyed
	EventHealed      = core.EvHealed
	EventDegraded    = core.EvDegraded
)

// GuardInfo is the control plane's wire form of a guard resource.
type GuardInfo = remote.GuardInfo

// GuardPolicyInfo is the wire form of a guard policy.
type GuardPolicyInfo = remote.GuardPolicyInfo

// IncidentInfo is the control plane's wire form of an incident
// resource.
type IncidentInfo = remote.IncidentInfo

// PoolInfo is the control plane's wire form of a warm-pool resource
// (the /v1/pools surface).
type PoolInfo = remote.PoolInfo

// PoolPolicyInfo is the wire form of a warm-pool policy.
type PoolPolicyInfo = remote.PoolPolicyInfo

// RevocationInfo is the wire form of one verifier revocation event
// (the /v1 equivalent of keylime.Verifier.Subscribe).
type RevocationInfo = remote.RevocationInfo

// QuotaInfo is the control plane's wire form of a tenant quota with
// usage (the /v1/quotas surface).
type QuotaInfo = remote.QuotaInfo

// TenantQuotaInfo is the wire form of a tenant quota.
type TenantQuotaInfo = remote.TenantQuotaInfo

// SchedInfo is the wire form of the scheduler snapshot (/v1/sched).
type SchedInfo = remote.SchedInfo

// HealthInfo is the wire form of the cloud's degraded-mode snapshot
// (/v1/health): per-backend circuit-breaker states, degraded while any
// breaker is open.
type HealthInfo = remote.HealthInfo

// ResiliencePolicyInfo is the wire form of a resilience policy
// (/v1/resilience): retry budget, backoff, per-phase deadline and
// breaker parameters.
type ResiliencePolicyInfo = remote.ResiliencePolicyInfo

// ErrDegraded marks acquisitions failed fast because a backend circuit
// breaker is open; DegradedError names the backend and carries a
// retry-after hint.
var ErrDegraded = core.ErrDegraded

// DegradedError is an ErrDegraded carrying the open backend's name and
// the breaker's cooldown as a retry hint.
type DegradedError = core.DegradedError

// ErrTransport marks /v1 responses that never came from boltedd's
// typed error surface (proxy 502s, load-balancer HTML); TransportError
// carries the raw evidence.
var ErrTransport = remote.ErrTransport

// TransportError is an ErrTransport with the raw HTTP status and body.
type TransportError = remote.TransportError

// NewServerHandler exposes an in-process cloud's complete service
// plane (HIL, BMI, Keylime registrar, node plane) over HTTP — what
// cmd/boltedd serves and Dial consumes.
func NewServerHandler(c *Cloud) (http.Handler, error) { return remote.NewHandler(c) }

// NewServerHandlerWithManager is NewServerHandler with a caller-owned
// control plane, for servers that also drive the Manager in process
// (e.g. to enable guards or inspect incidents without a round trip).
func NewServerHandlerWithManager(c *Cloud, mgr *Manager) (http.Handler, error) {
	return remote.NewHandlerWithManager(c, mgr)
}

// DefaultConfig mirrors the paper's 16-blade testbed.
func DefaultConfig() CloudConfig { return core.DefaultConfig() }

// NewEnclave creates a tenant enclave under a security profile.
func NewEnclave(c *Cloud, name string, p Profile) (*Enclave, error) {
	return core.NewEnclave(c, name, p)
}

// FederatedEnclave spans multiple independent clouds (§4.3's
// co-location federation); cross-cloud traffic always runs over IPsec.
type FederatedEnclave = core.FederatedEnclave

// NewFederatedEnclave creates an empty federation under a profile.
func NewFederatedEnclave(p Profile) (*FederatedEnclave, error) {
	return core.NewFederatedEnclave(p)
}

// VerifyPublishedFirmware is the tenant-side deterministic-build check:
// rebuild LinuxBoot from source and compare against the provider-
// published platform PCR in the node's HIL metadata.
func VerifyPublishedFirmware(metadata map[string]string, sourceID string, source []byte) error {
	return core.VerifyPublishedFirmware(metadata, sourceID, source)
}

// SimulateProvisioning runs the Figure-4/5 discrete-event timing model.
func SimulateProvisioning(cfg ProvisionConfig) *ProvisionResult {
	return core.SimulateProvisioning(cfg)
}

// DefaultProvisionConfig is a single attested LinuxBoot boot on the
// paper's infrastructure.
func DefaultProvisionConfig() ProvisionConfig { return core.DefaultProvisionConfig() }

// Figure7Apps is the paper's macro-benchmark suite.
var Figure7Apps = workload.Figure7Apps
