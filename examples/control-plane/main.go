// Control plane: run a boltedd in this process, then drive it purely
// through the /v1 tenant API — create an enclave resource, start an
// asynchronous batch acquisition Operation, follow its live event
// stream, and poll it to completion. The tenant side holds nothing but
// an HTTP client: no orchestrator, no blocking multi-minute call.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"bolted"
)

func main() {
	// Provider side: a cloud and its full service plane (raw planes
	// plus /v1), exactly what `boltedd -nodes 8` serves.
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 8
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("fedora28", bolted.OSImageSpec{
		KernelID: "fedora28-4.17.9",
		Kernel:   []byte("vmlinuz-4.17.9-200.fc28"),
		Initrd:   []byte("initramfs-4.17.9-200.fc28"),
		Cmdline:  "root=iscsi quiet",
	}); err != nil {
		log.Fatal(err)
	}
	var handler http.Handler
	if handler, err = bolted.NewServerHandler(cloud); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Tenant side: just the /v1 client.
	ctx := context.Background()
	cli := bolted.NewClient(srv.URL)
	if _, err := cli.CreateEnclave(ctx, "bob-lab", "bob"); err != nil {
		log.Fatal(err)
	}

	// Start the batch; the Operation comes back before any node boots.
	op, err := cli.Acquire(ctx, "bob-lab", "fedora28", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operation %s accepted (phase %s)\n", op.ID, op.Phase)

	// Follow the lifecycle journal live until the operation ends.
	if err := cli.StreamEvents(ctx, op.ID, 0, func(ev bolted.EventInfo) error {
		fmt.Printf("  %-12s %s %s\n", ev.Kind, ev.Node, ev.Detail)
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	final, err := cli.WaitOperation(ctx, op.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operation %s: %s — %d allocated, %d rejected in %v\n",
		final.ID, final.Phase, len(final.Result.Nodes), len(final.Result.Failed), final.Result.Wall)

	// The enclave resource reflects the server-side state; release one
	// node and tear the enclave down through the same API.
	info, _ := cli.GetEnclave(ctx, "bob-lab")
	fmt.Printf("enclave %s nodes: %v\n", info.Name, info.Nodes)
	for _, node := range final.Result.Nodes {
		if err := cli.ReleaseNode(ctx, "bob-lab", node, ""); err != nil {
			log.Fatal(err)
		}
	}
	if err := cli.DeleteEnclave(ctx, "bob-lab"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("enclave released and deleted over /v1")
}
