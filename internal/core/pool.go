package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bolted/internal/firmware"
	"bolted/internal/keylime"
)

// This file is the warm-pool subsystem: the paper's headline elasticity
// result cut attested provisioning from ~10 min to ~3 min, but every
// acquisition still pays the cold PXE → LinuxBoot → attest chain. The
// warm pool amortizes that chain across acquisitions: a background
// refiller keeps a configurable number of nodes pre-booted into the
// attested Heads runtime and parked in StateWarm (Free → Airlocked →
// Booting → Attesting → Warm), so AcquireNodes can skip straight to the
// kexec fast path — re-quote, rotate onto the enclave network, kexec
// the tenant payload — and fall back to the cold path only when the
// pool is dry. Pre-attestation during refill quotes the parked runtime
// against the provider whitelist, so a node with compromised firmware
// never waits in the pool at all.

// DefaultAirlocks is the number of parallel attestation airlocks an
// enclave pipelines quotes through. The paper's prototype had exactly
// one (§7.3, its acknowledged concurrency limitation); both the real
// provisioner and the timing model take their airlock count from
// PoolPolicy so the two always agree. It matches the batch worker
// pool, so the default bound never throttles a batch below its own
// parallelism.
const DefaultAirlocks = DefaultBatchParallelism

// Warm-pool refill defaults.
const (
	// DefaultMaxRefill bounds concurrent warm boots, so refilling a
	// large pool cannot monopolize the shared HIL/BMI/registrar
	// services against foreground acquisitions.
	DefaultMaxRefill = 2
	// DefaultRefillBackoff is how long the refiller waits after an
	// attempt found no free node (or a warm boot failed) before
	// rescanning.
	DefaultRefillBackoff = 50 * time.Millisecond
)

// PoolPolicy configures an enclave's warm pool. The zero value of any
// field takes its default; Target 0 keeps the pool drained. The struct
// carries its wire tags, so the /v1 surface serves it as-is.
type PoolPolicy struct {
	// Target is the warm occupancy the refiller maintains.
	Target int `json:"target"`
	// Airlocks is how many attestations (cold quotes, warm re-quotes
	// and refill pre-attests) may be in flight at once.
	Airlocks int `json:"airlocks,omitempty"`
	// MaxRefill rate-limits concurrent warm boots.
	MaxRefill int `json:"max_refill,omitempty"`
	// RetryBackoff is the refiller's pause after a failed or empty
	// refill attempt.
	RetryBackoff time.Duration `json:"retry_backoff_ns,omitempty"`
}

// DefaultPoolPolicy returns the default pool configuration: multi-
// airlock pipelining enabled, no warm nodes until Target is raised.
func DefaultPoolPolicy() PoolPolicy {
	return PoolPolicy{
		Airlocks:     DefaultAirlocks,
		MaxRefill:    DefaultMaxRefill,
		RetryBackoff: DefaultRefillBackoff,
	}
}

// withDefaults fills unset fields.
func (p PoolPolicy) withDefaults() PoolPolicy {
	if p.Airlocks <= 0 {
		p.Airlocks = DefaultAirlocks
	}
	if p.MaxRefill <= 0 {
		p.MaxRefill = DefaultMaxRefill
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = DefaultRefillBackoff
	}
	return p
}

// Validate reports policy inconsistencies.
func (p PoolPolicy) Validate() error {
	switch {
	case p.Target < 0:
		return fmt.Errorf("%w: pool target must be >= 0", ErrInvalid)
	case p.Airlocks < 0:
		return fmt.Errorf("%w: airlock count must be >= 0", ErrInvalid)
	case p.MaxRefill < 0:
		return fmt.Errorf("%w: refill concurrency must be >= 0", ErrInvalid)
	case p.RetryBackoff < 0:
		return fmt.Errorf("%w: refill backoff must be >= 0", ErrInvalid)
	default:
		return nil
	}
}

// PoolStats is a point-in-time view of an enclave's warm pool. It
// carries its wire tags: the /v1/pools surface serves it as-is.
type PoolStats struct {
	Enclave   string     `json:"enclave"`
	Policy    PoolPolicy `json:"policy"`
	Warm      int        `json:"warm"`      // nodes parked ready
	Refilling int        `json:"refilling"` // warm boots in flight
	Hits      uint64     `json:"hits"`
	Misses    uint64     `json:"misses"`
	Drained   uint64     `json:"drained"`
	Rejected  uint64     `json:"rejected"`
	WarmNodes []string   `json:"warm_nodes,omitempty"`
}

// warmNode is one parked, pre-attested standby: everything the kexec
// fast path needs to resume where the refiller stopped.
type warmNode struct {
	name    string
	agent   keylime.AgentConn
	machine *firmware.Machine // in-process clouds only
}

// WarmPool keeps an enclave's standby nodes and runs the background
// refiller. All methods are safe for concurrent use.
type WarmPool struct {
	e      *Enclave
	ctx    context.Context
	cancel context.CancelFunc
	wake   chan struct{}
	wg     sync.WaitGroup

	mu        sync.Mutex
	policy    PoolPolicy
	ready     []*warmNode
	refilling int
	closed    bool
	// recovering holds the refiller idle (no refills, no surplus
	// shedding) while crash recovery re-adopts recorded standbys —
	// otherwise the refiller would race re-adoption for the very nodes
	// the WAL says belong in this pool. resumePool releases it.
	recovering bool
	// failStreak counts consecutive failed refill attempts; the run
	// loop's retry timer backs off exponentially (with jitter) on it,
	// so a dead HIL never sees a synchronized fixed-rate retry storm.
	failStreak int

	hits, misses, drained, rejected uint64

	// metrics is the pool's pre-resolved instrument set (zero-value
	// no-ops when the cloud is uninstrumented).
	metrics poolMetrics
}

// syncWarmLocked refreshes the warm-occupancy gauge. Callers hold p.mu.
func (p *WarmPool) syncWarmLocked() { p.metrics.warm.Set(float64(len(p.ready))) }

// ConfigurePool creates the enclave's warm pool (starting its
// background refiller) or updates the policy of an existing one.
// Raising Target refills toward it; lowering it releases surplus warm
// nodes back to the free pool.
func (e *Enclave) ConfigurePool(p PoolPolicy) error { return e.configurePool(p, false) }

// configurePool is ConfigurePool with a recovery switch: a recovering
// pool starts with its refiller held so crash recovery can park the
// recorded standbys first (resumePool releases it).
func (e *Enclave) configurePool(p PoolPolicy, recovering bool) error {
	if err := p.Validate(); err != nil {
		return err
	}
	p = p.withDefaults()
	e.setAirlocks(p.Airlocks)
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.pool != nil {
		e.pool.setPolicy(p)
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	pool := &WarmPool{
		e:          e,
		ctx:        ctx,
		cancel:     cancel,
		wake:       make(chan struct{}, 1),
		policy:     p,
		recovering: recovering,
		metrics:    e.cloud.metrics.pool(e.Project),
	}
	e.pool = pool
	pool.wg.Add(1)
	go pool.run()
	return nil
}

// resumePool releases a pool configured in recovery mode; the refiller
// then refills (or sheds) toward the restored target as usual.
func (e *Enclave) resumePool() {
	p := e.warmPool()
	if p == nil {
		return
	}
	p.mu.Lock()
	p.recovering = false
	p.mu.Unlock()
	p.poke()
}

// PoolStats returns the warm pool's current state; ok is false when no
// pool is configured.
func (e *Enclave) PoolStats() (PoolStats, bool) {
	if p := e.warmPool(); p != nil {
		return p.stats(), true
	}
	return PoolStats{}, false
}

// DrainPool releases every parked warm node back to the free pool and
// sets Target to 0 so the refiller idles; the rest of the policy is
// retained. Reconfigure with a non-zero Target to re-arm.
func (e *Enclave) DrainPool() (PoolStats, error) {
	p := e.warmPool()
	if p == nil {
		return PoolStats{}, fmt.Errorf("%w: enclave %q has no warm pool", ErrNotFound, e.Project)
	}
	p.mu.Lock()
	p.policy.Target = 0
	p.mu.Unlock()
	p.drain("pool drained")
	return p.stats(), nil
}

// ClosePool stops the refiller and releases every warm node. It is a
// no-op without a pool; Destroy calls it so warm nodes never outlive
// their enclave.
func (e *Enclave) ClosePool() {
	e.poolMu.Lock()
	p := e.pool
	e.pool = nil
	e.poolMu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	// Everything parked before closed flipped is in ready and drains
	// here; refills that finish later see closed under p.mu and
	// self-release, so after wg.Wait nothing is left behind.
	p.drain("pool closed")
	p.wg.Wait()
}

// warmPool returns the enclave's pool (nil when none is configured).
func (e *Enclave) warmPool() *WarmPool {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	return e.pool
}

func (p *WarmPool) setPolicy(pol PoolPolicy) {
	p.mu.Lock()
	p.policy = pol
	p.mu.Unlock()
	p.poke()
}

func (p *WarmPool) stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Enclave:   p.e.Project,
		Policy:    p.policy,
		Warm:      len(p.ready),
		Refilling: p.refilling,
		Hits:      p.hits,
		Misses:    p.misses,
		Drained:   p.drained,
		Rejected:  p.rejected,
	}
	for _, wn := range p.ready {
		st.WarmNodes = append(st.WarmNodes, wn.name)
	}
	sort.Strings(st.WarmNodes)
	return st
}

// poke nudges the refiller without blocking.
func (p *WarmPool) poke() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// take pops up to n warm nodes for an acquisition, counting the
// shortfall as cold-path misses. It wakes the refiller to replace what
// it handed out.
func (p *WarmPool) take(n int) []*warmNode {
	p.mu.Lock()
	k := n
	if k > len(p.ready) {
		k = len(p.ready)
	}
	out := append([]*warmNode(nil), p.ready[:k]...)
	p.ready = append([]*warmNode(nil), p.ready[k:]...)
	p.hits += uint64(k)
	p.misses += uint64(n - k)
	p.metrics.hits.Add(float64(k))
	p.metrics.misses.Add(float64(n - k))
	p.syncWarmLocked()
	p.mu.Unlock()
	p.poke()
	return out
}

// putBack rolls an acquisition's take back (a failed batch
// reservation): returned nodes re-enter the pool and the take's
// hit/miss accounting is undone — the batch never happened, so it must
// not skew the ratios capacity planning reads. Nodes banned while out
// of the pool go to quarantine instead, and nodes returned after
// ClosePool are released to the free pool rather than re-parked in a
// detached pool nothing will ever drain.
func (p *WarmPool) putBack(nodes []*warmNode, misses int) {
	p.mu.Lock()
	p.misses -= uint64(misses)
	p.mu.Unlock()
	if len(nodes) == 0 {
		return
	}
	keep := nodes[:0]
	for _, wn := range nodes {
		if reason, ok := p.e.bannedReason(wn.name); ok {
			p.mu.Lock()
			p.hits--
			p.rejected++
			p.metrics.rejected.Inc()
			p.mu.Unlock()
			_ = p.e.quarantineTaken(wn.name, reason)
			continue
		}
		keep = append(keep, wn)
	}
	p.mu.Lock()
	if p.closed {
		p.drained += uint64(len(keep))
		p.metrics.drained.Add(float64(len(keep)))
		p.hits -= uint64(len(keep))
		p.mu.Unlock()
		for _, wn := range keep {
			p.e.releaseWarmNode(wn.name, "pool closed during rollback")
		}
		return
	}
	p.ready = append(keep, p.ready...)
	p.hits -= uint64(len(keep))
	p.syncWarmLocked()
	p.mu.Unlock()
}

// park re-inserts a standby the caller booted outside the refiller —
// crash recovery re-adopting a recorded warm node. It reports false when
// the pool closed meanwhile (the caller releases the node itself).
func (p *WarmPool) park(wn *warmNode) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.ready = append(p.ready, wn)
	p.syncWarmLocked()
	p.mu.Unlock()
	p.poke() // surplus above target is the refiller's to shed
	return true
}

// remove pulls one parked node by name (quarantine path). It returns
// nil when the node is not parked — e.g. already taken by a batch.
func (p *WarmPool) remove(name string) *warmNode {
	p.mu.Lock()
	var got *warmNode
	for i, wn := range p.ready {
		if wn.name == name {
			p.ready = append(p.ready[:i:i], p.ready[i+1:]...)
			p.rejected++
			p.metrics.rejected.Inc()
			got = wn
			break
		}
	}
	p.syncWarmLocked()
	p.mu.Unlock()
	if got != nil {
		p.poke() // occupancy dropped: the refiller replaces the standby
	}
	return got
}

// drain releases every parked node back to the free pool.
func (p *WarmPool) drain(detail string) {
	p.mu.Lock()
	nodes := p.ready
	p.ready = nil
	p.drained += uint64(len(nodes))
	p.metrics.drained.Add(float64(len(nodes)))
	p.syncWarmLocked()
	p.mu.Unlock()
	for _, wn := range nodes {
		p.e.releaseWarmNode(wn.name, detail)
	}
}

// run is the background refiller: context-cancellable, rate-limited by
// MaxRefill, and target-tracking in both directions.
func (p *WarmPool) run() {
	defer p.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		p.mu.Lock()
		if p.recovering {
			// Held by crash recovery: neither refill nor shed until the
			// recorded standbys are parked back.
			p.mu.Unlock()
			select {
			case <-p.ctx.Done():
				return
			case <-p.wake:
			}
			continue
		}
		if p.e.cloud.Degraded() {
			// Degraded hold: with a backend breaker open, warm boots
			// would be fed straight into a dead service and healthy
			// standbys stranded in the rejected pool — and shedding
			// surplus would fail its teardown calls the same way. Hold
			// everything and re-check once the breaker cooldown can
			// admit probes again.
			backoff := refillBackoff(p.policy.RetryBackoff, p.failStreak)
			p.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(backoff)
			select {
			case <-p.ctx.Done():
				return
			case <-p.wake:
			case <-timer.C:
			}
			continue
		}
		// Surplus first: a lowered target releases parked nodes.
		var surplus []*warmNode
		for len(p.ready) > p.policy.Target {
			last := len(p.ready) - 1
			surplus = append(surplus, p.ready[last])
			p.ready = p.ready[:last]
			p.drained++
			p.metrics.drained.Inc()
		}
		p.syncWarmLocked()
		deficit := p.policy.Target - len(p.ready) - p.refilling
		slots := p.policy.MaxRefill - p.refilling
		n := deficit
		if n > slots {
			n = slots
		}
		if n < 0 {
			n = 0
		}
		p.refilling += n
		backoff := refillBackoff(p.policy.RetryBackoff, p.failStreak)
		belowTarget := len(p.ready) < p.policy.Target
		p.mu.Unlock()

		for _, wn := range surplus {
			p.e.releaseWarmNode(wn.name, "pool target lowered")
		}
		for i := 0; i < n; i++ {
			p.wg.Add(1)
			go p.refillOne()
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		// Arm the retry timer only while below target: failed refills
		// do not poke (free pool empty would spin hot), so the timer
		// is their retry path. Below-target includes in-flight
		// attempts — an attempt can outlive one backoff period (e.g.
		// parked behind foreground work in the airlock queue, or
		// preempted by it) and then fail, and without a re-armed
		// timer that failure would strand the refiller asleep. At or
		// above target the loop sleeps until take/setPolicy/park poke
		// it — no idle wake-ups.
		var retry <-chan time.Time
		if belowTarget {
			timer.Reset(backoff)
			retry = timer.C
		}
		select {
		case <-p.ctx.Done():
			return
		case <-p.wake:
		case <-retry:
		}
	}
}

// refillOne boots one standby node into the warm state: reserve from
// the free pool, airlock, boot the attested runtime, pre-attest it
// against the provider whitelist, and park it. Failures route the node
// to the rejected pool exactly like a cold-path phase failure — and
// because rejected (and quarantined) nodes live in the provider's
// rejected project, not the free pool, they can never re-enter warm.
func (p *WarmPool) refillOne() {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		p.refilling--
		p.mu.Unlock()
	}()
	e := p.e
	// Each attempt runs as background-class work under its own cancel:
	// the airlock scheduler invokes it to preempt an in-flight refill
	// quote when foreground acquisitions are waiting for a slot.
	ctx, cancel := withSchedBackground(p.ctx)
	defer cancel()
	t0 := time.Now()
	name, err := e.cloud.HIL.AllocateAnyNode(ctx, e.Project)
	if err != nil {
		// Free pool empty (or pool closing). No poke: an immediate
		// wake would spin hot against an empty pool, so the retry
		// waits out the loop's backoff timer instead.
		p.noteRefill(false)
		return
	}
	e.journal.record(EvAllocated, name, "warm refill")
	wn, err := e.warmOne(ctx, name)
	if err != nil {
		// Mirror provisionOne's routing: a pool shutdown — or a
		// scheduler preemption of this attempt — aborts the healthy
		// node back to the free pool; a genuine phase failure
		// quarantines it in the rejected pool.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			e.abortNode(name, err)
		} else {
			p.mu.Lock()
			p.rejected++
			p.metrics.rejected.Inc()
			p.mu.Unlock()
			e.rejectNode(name, PhaseWarmRefill, err)
		}
		// Both routes back off: a preempted refill means foreground
		// pressure, a rejection means a sick node or service.
		p.noteRefill(false)
		return
	}
	p.metrics.refillSeconds.ObserveSince(t0)
	e.cloud.metrics.observePhase(PhaseWarmRefill, time.Since(t0))
	p.mu.Lock()
	if p.closed || len(p.ready) >= p.policy.Target {
		// The pool closed (or shrank) while this node booted.
		p.drained++
		p.metrics.drained.Inc()
		p.mu.Unlock()
		e.releaseWarmNode(name, "pool closed during refill")
		return
	}
	p.ready = append(p.ready, wn)
	p.failStreak = 0
	p.syncWarmLocked()
	p.mu.Unlock()
	p.poke() // a slot freed up and the park succeeded: keep filling
}

// noteRefill records a refill attempt's outcome for the backoff.
func (p *WarmPool) noteRefill(ok bool) {
	p.mu.Lock()
	if ok {
		p.failStreak = 0
	} else {
		p.failStreak++
		p.metrics.refillFails.Inc()
	}
	p.mu.Unlock()
}

// maxRefillBackoff caps the exponential refill backoff.
const maxRefillBackoff = 5 * time.Second

// refillBackoff computes the refiller's retry delay: the configured
// base doubled per consecutive failure (capped), with full jitter in
// [d/2, d] so a fleet of pools retrying against a dead HIL never
// synchronizes into a storm.
func refillBackoff(base time.Duration, streak int) time.Duration {
	if base <= 0 {
		base = DefaultRefillBackoff
	}
	if streak <= 0 {
		return base
	}
	shift := streak - 1
	if shift > 6 {
		shift = 6
	}
	d := base << shift
	if d > maxRefillBackoff {
		d = maxRefillBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// warmOne drives one reserved node to the parked warm state.
func (e *Enclave) warmOne(ctx context.Context, name string) (*warmNode, error) {
	if err := e.airlockNode(ctx, name); err != nil {
		return nil, err
	}
	w := &nodeWork{name: name}
	if err := e.bootNode(ctx, w); err != nil {
		return nil, err
	}
	if e.Profile.Attest {
		if err := e.preAttestWarm(ctx, w); err != nil {
			return nil, err
		}
	}
	if err := e.lc.to(name, StateWarm, "standby in attested runtime"); err != nil {
		return nil, err
	}
	return &warmNode{name: name, agent: w.agent, machine: w.machine}, nil
}

// preAttestWarm quotes the parked runtime against the provider's
// platform whitelist before the node enters the pool — the "pre-
// attested" half of the standby promise. No tenant payload is involved
// yet (that happens at acquisition time with a fresh nonce); this
// check only guarantees that firmware implants never wait in warm.
func (e *Enclave) preAttestWarm(ctx context.Context, w *nodeWork) error {
	if err := e.lc.to(w.name, StateAttesting, "warm pre-attest verifier="+e.verifierPort); err != nil {
		return err
	}
	release, err := e.acquireAirlock(ctx)
	if err != nil {
		return err
	}
	defer release()
	whitelist, err := e.cloud.Driver.ExpectedBootPCRs(ctx, w.name)
	if err != nil {
		return err
	}
	if err := keylime.QuoteAgainstWhitelist(ctx, e.cloud.Registrar, w.agent, e.verifierPort, whitelist); err != nil {
		return err
	}
	e.journal.record(EvAttested, w.name, "warm pre-attest verifier="+e.verifierPort)
	return nil
}

// releaseWarmNode returns a healthy parked node to the provider's free
// pool: stop its agent, unwire its airlock, free it. The ban check
// runs after the release, pairing with quarantineWarm's state check on
// the other side of the race so a revocation landing mid-release is
// contained whichever side loses.
func (e *Enclave) releaseWarmNode(name, detail string) {
	ctx := context.Background()
	_ = e.cloud.Driver.StopAgent(ctx, name)
	_ = e.cloud.HIL.FreeNode(ctx, e.Project, name)
	_ = e.cloud.HIL.DeleteNetwork(ctx, e.Project, airlockNet(name))
	_ = e.lc.to(name, StateFree, detail)
	if reason, ok := e.bannedReason(name); ok {
		// A revocation raced this release: the node must not sit in
		// the free pool where a batch could claim it.
		e.cloud.MarkRejected(e.Project, name, reason)
		e.journal.record(EvQuarantined, name, "banned during release: "+reason)
	}
}

// quarantineWarm is QuarantineNode's branch for a warm standby: the
// node is pulled from the pool (so no acquisition can ever take it),
// torn down, and parked in the provider's rejected project — it must
// never transit the free pool, where the refiller or a concurrent
// batch could claim it back. A standby already taken by a batch (the
// re-quote window) cannot be torn down here without racing the
// pipeline; it is banned instead — the fast path checks the ban before
// the payload-delivering re-quote and again before admission — and a
// node that already moved past the window is recovered by state.
func (e *Enclave) quarantineWarm(name, reason string) error {
	if p := e.warmPool(); p != nil {
		if wn := p.remove(name); wn != nil {
			return e.quarantineTaken(wn.name, reason)
		}
	}
	e.banNode(name, reason)
	switch st := e.lc.state(name); st {
	case StateWarm, StateProvisioned:
		// Mid-acquisition: the fast path's gates reject it.
		e.journal.record(EvRevoked, name, "banned mid-acquisition: "+reason)
		return nil
	case StateAllocated:
		// Admitted before the ban could land: full member quarantine,
		// and the payload-delivered PSK is retired like any member
		// revocation's would be.
		e.bannedReason(name)
		if err := e.QuarantineNode(name, reason); err != nil {
			return err
		}
		if e.Profile.EncryptNetwork {
			_ = e.RotateNetKey()
		}
		return nil
	case StateFree:
		// A pool drain raced the revocation and released the node to
		// the free pool, where no gate would ever consult the ban —
		// park it in the provider's rejected project directly.
		e.bannedReason(name)
		e.cloud.MarkRejected(e.Project, name, reason)
		e.journal.record(EvQuarantined, name, "banned during release: "+reason)
		return nil
	default:
		// Already rejected or quarantined by the pipeline: contained.
		e.bannedReason(name)
		return fmt.Errorf("%w: node %q is already %s", ErrConflict, name, st)
	}
}

// quarantineTaken tears down a standby the caller already owns (pulled
// from the pool, or held by a rolled-back batch) into quarantine.
func (e *Enclave) quarantineTaken(name, reason string) error {
	e.releaseNodeResources(name)
	e.cloud.MarkRejected(e.Project, name, reason)
	_ = e.cloud.HIL.DeleteNetwork(context.Background(), e.Project, airlockNet(name))
	return e.lc.to(name, StateQuarantined, reason)
}

// banNode records a revocation that arrived while the node was out of
// the pool mid-acquisition; bannedReason is checked (and the ban
// consumed) before the node could reach the enclave or the pool again.
func (e *Enclave) banNode(name, reason string) {
	e.banMu.Lock()
	if e.bannedWarm == nil {
		e.bannedWarm = make(map[string]string)
	}
	e.bannedWarm[name] = reason
	e.banMu.Unlock()
}

// bannedReason reports (and clears) a pending mid-acquisition ban.
func (e *Enclave) bannedReason(name string) (string, bool) {
	e.banMu.Lock()
	defer e.banMu.Unlock()
	reason, ok := e.bannedWarm[name]
	if ok {
		delete(e.bannedWarm, name)
	}
	return reason, ok
}
