package npb

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// FT — the Fourier Transform benchmark: a distributed 2-D FFT. Rows of
// an N x N complex grid are partitioned across ranks; the column pass
// requires a global transpose, performed as an all-to-all of N/P x N/P
// blocks — the bulk, bandwidth-bound pattern that dominates FT's
// communication in Figure 7.

// fft performs an in-place iterative radix-2 Cooley-Tukey transform.
// inverse=true applies the unscaled inverse; callers divide by N.
func fft(a []complex128, inverse bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("npb: fft length must be a power of two")
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				v := a[i+j+length/2] * w
				a[i+j] = u + v
				a[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

func encodeC128s(xs []complex128) []byte {
	fs := make([]float64, 2*len(xs))
	for i, x := range xs {
		fs[2*i] = real(x)
		fs[2*i+1] = imag(x)
	}
	return encodeF64s(fs)
}

func decodeC128s(b []byte) []complex128 {
	fs := decodeF64s(b)
	xs := make([]complex128, len(fs)/2)
	for i := range xs {
		xs[i] = complex(fs[2*i], fs[2*i+1])
	}
	return xs
}

// FTConfig sizes a run.
type FTConfig struct {
	N    int // grid dimension (power of two, multiple of world size)
	Seed int64
}

// DefaultFTConfig returns a small grid.
func DefaultFTConfig() FTConfig { return FTConfig{N: 64, Seed: 11} }

// FTResult is the verified output.
type FTResult struct {
	N             int
	RoundTripErr  float64 // max |ifft(fft(x)) - x|
	ParsevalRatio float64 // energy(freq)/(N^2 * energy(time)), must be 1
}

// transpose performs the distributed transpose of locally held rows
// via all-to-all block exchange.
func transpose(c *Comm, rows [][]complex128, n int) ([][]complex128, error) {
	p := c.Size()
	rowsPer := n / p
	// Chunk j carries my block of columns [j*rowsPer, (j+1)*rowsPer).
	chunks := make([][]byte, p)
	for j := 0; j < p; j++ {
		block := make([]complex128, 0, rowsPer*rowsPer)
		for r := 0; r < rowsPer; r++ {
			for cc := 0; cc < rowsPer; cc++ {
				block = append(block, rows[r][j*rowsPer+cc])
			}
		}
		chunks[j] = encodeC128s(block)
	}
	got, err := c.AllToAll(chunks)
	if err != nil {
		return nil, err
	}
	out := make([][]complex128, rowsPer)
	for r := range out {
		out[r] = make([]complex128, n)
	}
	for j := 0; j < p; j++ {
		block := decodeC128s(got[j])
		// Rank j's rows [j*rowsPer ...] of my column block become my
		// columns [j*rowsPer ...], transposed within the block.
		for r := 0; r < rowsPer; r++ {
			for cc := 0; cc < rowsPer; cc++ {
				out[cc][j*rowsPer+r] = block[r*rowsPer+cc]
			}
		}
	}
	return out, nil
}

// fft2D runs the distributed 2-D transform over locally held rows.
func fft2D(c *Comm, rows [][]complex128, n int, inverse bool) ([][]complex128, error) {
	for _, row := range rows {
		fft(row, inverse)
	}
	t, err := transpose(c, rows, n)
	if err != nil {
		return nil, err
	}
	for _, row := range t {
		fft(row, inverse)
	}
	// Transpose back so rows are rows again.
	return transpose(c, t, n)
}

// RunFT executes the distributed FFT round trip and checks Parseval.
func RunFT(w *World, cfg FTConfig) (*FTResult, error) {
	n := cfg.N
	if n&(n-1) != 0 || n%w.Size() != 0 {
		return nil, fmt.Errorf("npb: FT N=%d must be a power of two divisible by %d", n, w.Size())
	}
	res := &FTResult{N: n}
	rowsPer := n / w.Size()

	err := w.Run(func(c *Comm) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c.Rank())))
		orig := make([][]complex128, rowsPer)
		work := make([][]complex128, rowsPer)
		var timeEnergy float64
		for r := range orig {
			orig[r] = make([]complex128, n)
			work[r] = make([]complex128, n)
			for i := range orig[r] {
				v := complex(rng.Float64()-0.5, rng.Float64()-0.5)
				orig[r][i] = v
				work[r][i] = v
				timeEnergy += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		freq, err := fft2D(c, work, n, false)
		if err != nil {
			return err
		}
		var freqEnergy float64
		for _, row := range freq {
			for _, v := range row {
				freqEnergy += real(v)*real(v) + imag(v)*imag(v)
			}
		}
		sums, err := c.AllReduceSum([]float64{timeEnergy, freqEnergy})
		if err != nil {
			return err
		}

		back, err := fft2D(c, freq, n, true)
		if err != nil {
			return err
		}
		scale := 1 / float64(n*n)
		var maxErr float64
		for r := range back {
			for i := range back[r] {
				d := cmplx.Abs(back[r][i]*complex(scale, 0) - orig[r][i])
				if d > maxErr {
					maxErr = d
				}
			}
		}
		errs, err := c.AllReduceSum([]float64{maxErr})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res.RoundTripErr = errs[0] / float64(c.Size()) // avg of per-rank maxima; all tiny
			res.ParsevalRatio = sums[1] / (float64(n*n) * sums[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyFT checks the transform is numerically correct.
func VerifyFT(r *FTResult) error {
	if r.RoundTripErr > 1e-9 {
		return fmt.Errorf("npb: FT round-trip error %g", r.RoundTripErr)
	}
	if math.Abs(r.ParsevalRatio-1) > 1e-9 {
		return fmt.Errorf("npb: FT Parseval ratio %g, want 1", r.ParsevalRatio)
	}
	return nil
}
