package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bolted/internal/keylime"
)

// This file is the resilience policy layer: transient-vs-fatal error
// classification, bounded per-call retries with capped full-jitter
// backoff, and per-phase deadlines. Together with the per-backend
// circuit breakers (breaker.go) it keeps one flaky service call from
// sending a healthy node to the rejected pool, while a genuine trust
// failure (an attestation-quote mismatch) still rejects immediately:
// retrying a verdict would be a security hole, not resilience.

// ResiliencePolicy bounds how the pipeline survives service faults.
// The zero value normalizes to the defaults below via withDefaults.
// It carries wire tags: /v1 serves and accepts it as-is.
type ResiliencePolicy struct {
	// MaxAttempts is the per-backend-call attempt budget (1 = no
	// retries). Only transient failures are retried.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// RetryBackoff is the base of the capped full-jitter backoff
	// between attempts.
	RetryBackoff time.Duration `json:"retry_backoff_ns,omitempty"`
	// BackoffCap caps the exponential backoff growth.
	BackoffCap time.Duration `json:"backoff_cap_ns,omitempty"`
	// PhaseDeadline bounds each lifecycle phase (airlock, boot, attest,
	// provision, and the warm variants); a phase that cannot complete
	// within it — an indefinitely hung backend, say — fails with
	// context.DeadlineExceeded and the node is rejected rather than
	// wedging a provisioner worker forever. 0 leaves phases unbounded.
	PhaseDeadline time.Duration `json:"phase_deadline_ns,omitempty"`
	// BreakerThreshold is how many consecutive transient failures trip
	// a backend's circuit breaker open.
	BreakerThreshold int `json:"breaker_threshold,omitempty"`
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe.
	BreakerCooldown time.Duration `json:"breaker_cooldown_ns,omitempty"`
}

// DefaultResiliencePolicy is the policy EnableResilience applies when
// given a zero value.
func DefaultResiliencePolicy() ResiliencePolicy {
	return ResiliencePolicy{
		MaxAttempts:      4,
		RetryBackoff:     10 * time.Millisecond,
		BackoffCap:       2 * time.Second,
		PhaseDeadline:    0, // unbounded unless the operator opts in
		BreakerThreshold: 5,
		BreakerCooldown:  500 * time.Millisecond,
	}
}

// Validate reports policy inconsistencies.
func (p ResiliencePolicy) Validate() error {
	switch {
	case p.MaxAttempts < 0:
		return fmt.Errorf("%w: max attempts must be >= 0", ErrInvalid)
	case p.RetryBackoff < 0 || p.BackoffCap < 0 || p.PhaseDeadline < 0 || p.BreakerCooldown < 0:
		return fmt.Errorf("%w: resilience durations must be >= 0", ErrInvalid)
	case p.BreakerThreshold < 0:
		return fmt.Errorf("%w: breaker threshold must be >= 0", ErrInvalid)
	default:
		return nil
	}
}

// withDefaults fills unset fields from DefaultResiliencePolicy.
// PhaseDeadline is genuinely optional and stays as given.
func (p ResiliencePolicy) withDefaults() ResiliencePolicy {
	d := DefaultResiliencePolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = d.RetryBackoff
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = d.BackoffCap
	}
	if p.BreakerThreshold < 1 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	return p
}

// TransientError classifies an error transient (worth retrying; counts
// against the backend's circuit breaker) versus fatal. The taxonomy:
//
//   - An attestation-quote mismatch is a trust verdict, never a service
//     fault: always fatal, even if some wrapper also marks the chain
//     transient.
//   - ErrDegraded is the breaker itself speaking; retrying would defeat
//     the fail-fast.
//   - Anything exposing Transient() bool — remote.TransportError,
//     injected fault.Error — classifies itself.
//   - A context deadline is transient: the service may simply have been
//     slow. A context cancellation is not — the caller asked to stop.
func TransientError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, keylime.ErrQuoteMismatch) {
		return false
	}
	if errors.Is(err, ErrDegraded) {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// sleepCtx sleeps for d or until ctx ends, whichever is first,
// returning ctx.Err() promptly on cancellation. Unlike time.After it
// never leaks a timer.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryBackoffFor returns the capped full-jitter delay before retry
// attempt n (n >= 1): uniform in [d/2, d] where d doubles per attempt
// up to the cap. The jitter de-synchronizes concurrent retriers; it
// does not affect functional determinism (which calls fault is decided
// by the injector's keyed hash, not by timing).
func retryBackoffFor(p ResiliencePolicy, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	d := p.RetryBackoff << shift
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	if d <= 0 {
		return 0
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// resilientCall runs one backend call under the cloud's resilience
// policy: the breaker admits or fails fast with ErrDegraded, transient
// failures are retried with capped full-jitter backoff up to the
// attempt budget, and fatal errors (or the caller's own cancellation)
// return immediately. Every attempt reports its outcome to the breaker
// — retries are exactly the sustained-failure signal that should trip
// it.
func (c *Cloud) resilientCall(ctx context.Context, backend string, fn func() error) error {
	r := c.resilience
	var err error
	for attempt := 0; ; attempt++ {
		b := r.breakers[backend]
		if !b.allow() {
			c.metrics.incDegradedFail()
			return &DegradedError{Backend: backend, RetryAfter: r.policy.BreakerCooldown}
		}
		err = fn()
		if err == nil {
			b.success()
			return nil
		}
		transient := TransientError(err)
		if transient {
			// Only service faults count against the breaker: a quote
			// mismatch (or other trust verdict) must never trip the
			// registrar into degraded mode.
			b.failure()
		} else {
			// A fatal error is an application-level response — proof the
			// backend is alive. Clear the consecutive-failure streak and
			// release any half-open probe slot this call was admitted
			// under, or a fatal probe outcome would strand the breaker
			// half-open forever.
			b.success()
		}
		if ctx.Err() != nil || !transient || attempt+1 >= r.policy.MaxAttempts {
			if transient && attempt+1 >= r.policy.MaxAttempts {
				c.metrics.incRetryExhausted(backend)
			}
			// A transient fault cut short by the caller's own context is
			// reported as that cancellation: the backend merely flaked
			// and the caller asked to stop, so the provisioner must
			// route the node as aborted (healthy, back to the free
			// pool), never rejected.
			if transient && ctx.Err() != nil {
				return fmt.Errorf("%w (retry abandoned: %v)", ctx.Err(), err)
			}
			return err
		}
		c.metrics.incRetry(backend)
		if serr := sleepCtx(ctx, retryBackoffFor(r.policy, attempt+1)); serr != nil {
			return fmt.Errorf("%w (retry abandoned: %v)", serr, err)
		}
	}
}
