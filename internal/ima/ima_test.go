package ima

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"bolted/internal/tpm"
)

func newCollector(t testing.TB, p Policy) (*Collector, *tpm.TPM) {
	t.Helper()
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	return NewCollector(tp, p), tp
}

func TestPolicyFiltering(t *testing.T) {
	c, _ := newCollector(t, Policy{MeasureExec: true})
	if !c.Measure("/bin/ls", []byte("ls"), HookExec, 1000) {
		t.Error("exec by non-root not measured under MeasureExec")
	}
	if c.Measure("/etc/passwd", []byte("pw"), HookRead, 0) {
		t.Error("root read measured without MeasureRootReads")
	}

	c2, _ := newCollector(t, Policy{MeasureRootReads: true})
	if c2.Measure("/etc/passwd", []byte("pw"), HookRead, 1000) {
		t.Error("non-root read measured")
	}
	if !c2.Measure("/etc/passwd", []byte("pw"), HookRead, 0) {
		t.Error("root read not measured")
	}
	if c2.Measure("/bin/ls", []byte("ls"), HookExec, 0) {
		t.Error("exec measured without MeasureExec")
	}
}

func TestMeasureOnFirstUse(t *testing.T) {
	c, _ := newCollector(t, StressPolicy)
	content := []byte("#!/bin/sh\necho hi")
	if !c.Measure("/usr/bin/tool", content, HookExec, 0) {
		t.Fatal("first use not measured")
	}
	for i := 0; i < 5; i++ {
		if c.Measure("/usr/bin/tool", content, HookExec, 0) {
			t.Fatal("unchanged file re-measured")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1", c.Len())
	}
	// Tampering re-measures: this is the detection hook.
	if !c.Measure("/usr/bin/tool", []byte("evil"), HookExec, 0) {
		t.Fatal("changed content not re-measured")
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2 after tamper", c.Len())
	}
}

func TestReplayMatchesPCR10(t *testing.T) {
	c, tp := newCollector(t, StressPolicy)
	for i := 0; i < 20; i++ {
		c.Measure(fmt.Sprintf("/bin/tool%d", i), []byte{byte(i)}, HookExec, 0)
	}
	want, _ := tp.PCRValue(PCR)
	if got := ReplayAggregate(c.List()); got != want {
		t.Fatalf("replay = %x, want quoted PCR10 %x", got, want)
	}
}

func TestReplayDetectsListTampering(t *testing.T) {
	c, tp := newCollector(t, StressPolicy)
	c.Measure("/bin/a", []byte("a"), HookExec, 0)
	c.Measure("/bin/evil", []byte("evil"), HookExec, 0)
	list := c.List()
	// A compromised node that strips the incriminating entry can no
	// longer match the TPM-quoted aggregate.
	stripped := list[:1]
	want, _ := tp.PCRValue(PCR)
	if ReplayAggregate(stripped) == want {
		t.Fatal("stripped list still matches PCR10")
	}
	// Nor can it substitute a whitelisted hash.
	forged := append([]Entry(nil), list...)
	forged[1].FileHash = sha256.Sum256([]byte("innocent"))
	if ReplayAggregate(forged) == want {
		t.Fatal("forged list still matches PCR10")
	}
}

func TestWhitelistCheck(t *testing.T) {
	w := NewWhitelist()
	w.AllowContent("/bin/sh", []byte("shell-v1"))
	w.AllowContent("/bin/sh", []byte("shell-v2")) // two approved versions
	w.AllowContent("/bin/ls", []byte("ls"))

	entries := []Entry{
		{Path: "/bin/sh", FileHash: sha256.Sum256([]byte("shell-v2")), Hook: HookExec},
		{Path: "/bin/ls", FileHash: sha256.Sum256([]byte("ls")), Hook: HookExec},
	}
	if v := w.Check(entries); len(v) != 0 {
		t.Fatalf("clean list produced violations: %v", v)
	}

	entries = append(entries,
		Entry{Path: "/bin/sh", FileHash: sha256.Sum256([]byte("trojan")), Hook: HookExec},
		Entry{Path: "/tmp/dropper", FileHash: sha256.Sum256([]byte("x")), Hook: HookExec},
	)
	v := w.Check(entries)
	if len(v) != 2 {
		t.Fatalf("violations = %d, want 2: %v", len(v), v)
	}
	if v[0].Reason != "hash not approved for path" {
		t.Errorf("violation 0 reason = %q", v[0].Reason)
	}
	if v[1].Reason != "path not in whitelist" {
		t.Errorf("violation 1 reason = %q", v[1].Reason)
	}
}

func TestConcurrentMeasurement(t *testing.T) {
	c, tp := newCollector(t, StressPolicy)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Measure(fmt.Sprintf("/w%d/f%d", w, i), []byte{byte(w), byte(i)}, HookExec, 0)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("entries = %d, want 800", c.Len())
	}
	// Under concurrency the list order may not match PCR extend order;
	// the TPM event log is the ground truth the verifier ultimately
	// trusts. Verify the event log replay matches PCR10.
	replayed := tpm.ReplayLog(tp.EventLog())
	want, _ := tp.PCRValue(PCR)
	if replayed[PCR] != want {
		t.Fatal("event log replay does not match PCR10")
	}
}

// Property: whitelist approves exactly what was allowed.
func TestQuickWhitelist(t *testing.T) {
	f := func(good, bad []byte) bool {
		if string(good) == string(bad) {
			return true
		}
		w := NewWhitelist()
		w.AllowContent("/f", good)
		okList := []Entry{{Path: "/f", FileHash: sha256.Sum256(good)}}
		badList := []Entry{{Path: "/f", FileHash: sha256.Sum256(bad)}}
		return len(w.Check(okList)) == 0 && len(w.Check(badList)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: replay aggregate is order-sensitive (hash chain, not a set).
func TestQuickReplayOrderSensitive(t *testing.T) {
	f := func(a, b [8]byte) bool {
		if a == b {
			return true
		}
		e1 := Entry{Path: "/a", FileHash: sha256.Sum256(a[:])}
		e2 := Entry{Path: "/b", FileHash: sha256.Sum256(b[:])}
		return ReplayAggregate([]Entry{e1, e2}) != ReplayAggregate([]Entry{e2, e1})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
