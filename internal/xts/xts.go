// Package xts implements the XTS-AES mode of operation (IEEE P1619),
// the sector cipher used by LUKS/dm-crypt with the aes-xts-plain64
// specification. The Go standard library provides no XTS mode, so Bolted's
// LUKS substrate implements it here over crypto/aes.
//
// XTS uses two independent AES keys: one for data blocks, one to encrypt
// the sector number into the initial tweak. Each 16-byte block within a
// sector is whitened with the tweak before and after the block cipher, and
// the tweak is multiplied by alpha in GF(2^128) between blocks, so equal
// plaintext blocks at different positions produce unrelated ciphertext.
//
// Only whole-block sectors are supported (ciphertext stealing is not
// implemented); disk sectors are 512 or 4096 bytes, always a multiple of
// the AES block size.
package xts

import (
	"crypto/cipher"
	"encoding/binary"
	"errors"
)

const blockSize = 16

// Cipher is an XTS-AES tweakable cipher over sectors.
type Cipher struct {
	data  cipher.Block // K1: encrypts data blocks
	tweak cipher.Block // K2: encrypts the sector number
}

// NewCipher creates an XTS cipher from a double-length key: the first
// half keys the data cipher, the second half the tweak cipher, matching
// the dm-crypt aes-xts key layout. Supported lengths are 32 (XTS-AES-128)
// and 64 (XTS-AES-256) bytes. The mkBlock function constructs the
// underlying block cipher (e.g. aes.NewCipher).
func NewCipher(mkBlock func(key []byte) (cipher.Block, error), key []byte) (*Cipher, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, errors.New("xts: key must be 32 or 64 bytes (double-length)")
	}
	half := len(key) / 2
	data, err := mkBlock(key[:half])
	if err != nil {
		return nil, err
	}
	tweak, err := mkBlock(key[half:])
	if err != nil {
		return nil, err
	}
	if data.BlockSize() != blockSize || tweak.BlockSize() != blockSize {
		return nil, errors.New("xts: underlying cipher must have 16-byte blocks")
	}
	return &Cipher{data: data, tweak: tweak}, nil
}

// mulAlpha multiplies the tweak by alpha in GF(2^128) using the XTS
// little-endian convention, operating on two 64-bit halves.
func mulAlpha(t *[blockSize]byte) {
	lo := binary.LittleEndian.Uint64(t[:8])
	hi := binary.LittleEndian.Uint64(t[8:])
	carry := hi >> 63
	hi = hi<<1 | lo>>63
	lo <<= 1
	lo ^= carry * 0x87
	binary.LittleEndian.PutUint64(t[:8], lo)
	binary.LittleEndian.PutUint64(t[8:], hi)
}

// initialTweak computes E_K2(sectorNum) with the sector number encoded
// little-endian in the low 8 bytes ("plain64").
func (c *Cipher) initialTweak(sectorNum uint64) [blockSize]byte {
	var t [blockSize]byte
	binary.LittleEndian.PutUint64(t[:8], sectorNum)
	c.tweak.Encrypt(t[:], t[:])
	return t
}

// EncryptSector encrypts plaintext into dst for the given sector number.
// dst and plaintext must have equal length, a positive multiple of 16
// bytes. dst may alias plaintext.
func (c *Cipher) EncryptSector(dst, plaintext []byte, sectorNum uint64) error {
	return c.process(dst, plaintext, sectorNum, c.data.Encrypt)
}

// DecryptSector decrypts ciphertext into dst for the given sector number.
func (c *Cipher) DecryptSector(dst, ciphertext []byte, sectorNum uint64) error {
	return c.process(dst, ciphertext, sectorNum, c.data.Decrypt)
}

func (c *Cipher) process(dst, src []byte, sectorNum uint64, op func(dst, src []byte)) error {
	if len(src) == 0 || len(src)%blockSize != 0 {
		return errors.New("xts: sector length must be a positive multiple of 16")
	}
	if len(dst) != len(src) {
		return errors.New("xts: dst and src length mismatch")
	}
	t := c.initialTweak(sectorNum)
	for off := 0; off < len(src); off += blockSize {
		tl := binary.LittleEndian.Uint64(t[:8])
		th := binary.LittleEndian.Uint64(t[8:])
		in, out := src[off:off+blockSize], dst[off:off+blockSize]
		binary.LittleEndian.PutUint64(out[:8], binary.LittleEndian.Uint64(in[:8])^tl)
		binary.LittleEndian.PutUint64(out[8:], binary.LittleEndian.Uint64(in[8:])^th)
		op(out, out)
		binary.LittleEndian.PutUint64(out[:8], binary.LittleEndian.Uint64(out[:8])^tl)
		binary.LittleEndian.PutUint64(out[8:], binary.LittleEndian.Uint64(out[8:])^th)
		mulAlpha(&t)
	}
	return nil
}
