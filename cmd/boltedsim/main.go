// Command boltedsim regenerates the paper's evaluation (§7) as text
// tables: one sub-report per figure. Run with -fig all (default) or a
// specific figure: 3a, 3b, 3c, 4, 5, 6, 7, ca, npb, batch, warm,
// sched, fault.
//
// -fig sched and -fig fault also write machine-readable benchmark
// reports (BENCH_sched.json / BENCH_fault.json; path overridable with
// -out); with -check they exit non-zero when their gates fail, which
// is how CI enforces them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/bmi"
	"bolted/internal/ceph"
	"bolted/internal/core"
	"bolted/internal/ima"
	"bolted/internal/ipsec"
	"bolted/internal/luks"
	"bolted/internal/npb"
	"bolted/internal/tpm"
	"bolted/internal/workload"
)

// Flags consumed by the gated benchmarks (sched.go, fault.go).
var (
	benchCheck      bool
	benchOut        string
	schedMetricsOut string
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 3c, 4, 5, 6, 7, ca, npb, batch, warm, sched, fault, all")
	quick := flag.Bool("quick", false, "smaller measurement volumes (CI mode)")
	flag.BoolVar(&benchCheck, "check", false, "sched/fault: exit non-zero when the benchmark gates fail")
	flag.StringVar(&benchOut, "out", "", "sched/fault: path for the JSON benchmark report (default BENCH_sched.json / BENCH_fault.json)")
	flag.StringVar(&schedMetricsOut, "metrics-out", "METRICS_sched.prom", "sched: path for the Prometheus exposition of the churn run (empty disables)")
	flag.Parse()

	figures := map[string]func(bool){
		"3a": fig3a, "3b": fig3b, "3c": fig3c,
		"4": fig4, "5": fig5, "6": fig6, "7": fig7, "ca": figCA,
		"npb": figNPB, "batch": figBatch, "warm": figWarm, "sched": figSched,
		"fault": figFault,
	}
	if *fig == "all" {
		for _, k := range []string{"3a", "3b", "3c", "4", "5", "6", "7", "ca", "npb", "batch", "warm", "sched", "fault"} {
			figures[k](*quick)
		}
		return
	}
	f, ok := figures[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	f(*quick)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// measureDevice runs a dd-style sequential pass and returns MB/s.
func measureDevice(dev blockdev.Device, write bool, passBytes int64) float64 {
	const block = 1 << 20
	buf := make([]byte, block)
	for i := range buf {
		buf[i] = byte(i)
	}
	sectors := int64(block / blockdev.SectorSize)
	span := dev.NumSectors() / sectors * sectors
	if !write {
		for off := int64(0); off < span; off += sectors {
			if err := dev.WriteSectors(buf, off); err != nil {
				panic(err)
			}
		}
	}
	iters := passBytes / block
	start := time.Now()
	for i := int64(0); i < iters; i++ {
		off := (i * sectors) % span
		var err error
		if write {
			err = dev.WriteSectors(buf, off)
		} else {
			err = dev.ReadSectors(buf, off)
		}
		if err != nil {
			panic(err)
		}
	}
	return float64(passBytes) / time.Since(start).Seconds() / 1e6
}

func fig3a(quick bool) {
	header("Figure 3a: LUKS overhead on a RAM disk (dd, MB/s)")
	pass := int64(256 << 20)
	if quick {
		pass = 32 << 20
	}
	plain, _ := blockdev.NewRAMDisk(64 << 20)
	encBase, _ := blockdev.NewRAMDisk(64 << 20)
	enc, err := luks.FormatWithIterations(encBase, []byte("x"), 16)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %10s %10s\n", "", "read", "write")
	fmt.Printf("%-8s %9.0f %10.0f\n", "plain", measureDevice(plain, false, pass), measureDevice(plain, true, pass))
	fmt.Printf("%-8s %9.0f %10.0f\n", "LUKS", measureDevice(enc, false, pass), measureDevice(enc, true, pass))
	fmt.Println("expect: LUKS well below plain RAM speed; write <= read; both near/above paper's ~1 GB/s scale on modern AES-NI")
}

func fig3b(quick bool) {
	header("Figure 3b: IPsec throughput (iperf-style, MB/s)")
	stream := make([]byte, 1<<20)
	vol := int64(256 << 20)
	if quick {
		vol = 16 << 20
	}
	run := func(suite ipsec.Suite, mtu int) float64 {
		tx, rx, err := ipsec.NewPair(suite, ipsec.NewMasterKey())
		if err != nil {
			panic(err)
		}
		iters := vol / int64(len(stream))
		if suite == ipsec.SuiteSWAES && iters > 16 {
			iters = 16 // software AES is slow by design
		}
		start := time.Now()
		for i := int64(0); i < iters; i++ {
			pkts, err := ipsec.SegmentStream(tx, stream, mtu)
			if err != nil {
				panic(err)
			}
			if _, err := ipsec.ReassembleStream(rx, pkts); err != nil {
				panic(err)
			}
		}
		return float64(iters*int64(len(stream))) / time.Since(start).Seconds() / 1e6
	}
	fmt.Printf("%-18s %10s\n", "config", "MB/s")
	fmt.Printf("%-18s %9.0f\n", "no encryption", float64(10e9/8/1e6)) // wire-limited reference
	for _, cfg := range []struct {
		name  string
		suite ipsec.Suite
		mtu   int
	}{
		{"IPsec HW mtu1500", ipsec.SuiteHWAES, 1500},
		{"IPsec HW mtu9000", ipsec.SuiteHWAES, 9000},
		{"IPsec SW mtu1500", ipsec.SuiteSWAES, 1500},
		{"IPsec SW mtu9000", ipsec.SuiteSWAES, 9000},
	} {
		fmt.Printf("%-18s %9.0f\n", cfg.name, run(cfg.suite, cfg.mtu))
	}
	fmt.Println("expect: HW >> SW; mtu9000 >= mtu1500; even HW well below the plain wire")
}

func fig3cStack(withLUKS, withIPsec bool, readAhead int64) blockdev.Device {
	cluster, err := ceph.NewCluster(3, 2)
	if err != nil {
		panic(err)
	}
	img, err := ceph.NewImageDevice(cluster, "sim", 64<<20)
	if err != nil {
		panic(err)
	}
	var tr blockdev.Transport = blockdev.Loopback{Target: blockdev.NewTarget(img)}
	if withIPsec {
		t2, err := blockdev.NewIPsecTransport(tr, ipsec.SuiteHWAES, 9000)
		if err != nil {
			panic(err)
		}
		tr = t2
	}
	client, err := blockdev.NewClient(tr, readAhead)
	if err != nil {
		panic(err)
	}
	if !withLUKS {
		return client
	}
	vol, err := luks.FormatWithIterations(client, []byte("x"), 16)
	if err != nil {
		panic(err)
	}
	return vol
}

func fig3c(quick bool) {
	header("Figure 3c: network-mounted storage, iSCSI over Ceph (dd, MB/s)")
	pass := int64(128 << 20)
	if quick {
		pass = 16 << 20
	}
	fmt.Printf("%-12s %10s %10s\n", "", "read", "write")
	for _, cfg := range []struct {
		name        string
		luks, ipsec bool
	}{
		{"plain", false, false},
		{"LUKS", true, false},
		{"IPsec", false, true},
		{"LUKS+IPsec", true, true},
	} {
		r := measureDevice(fig3cStack(cfg.luks, cfg.ipsec, blockdev.TunedReadAhead), false, pass)
		w := measureDevice(fig3cStack(cfg.luks, cfg.ipsec, blockdev.TunedReadAhead), true, pass)
		fmt.Printf("%-12s %9.0f %10.0f\n", cfg.name, r, w)
	}
	// The read-ahead note from §7.2.
	for _, ra := range []struct {
		name string
		val  int64
	}{{"128KiB read-ahead", blockdev.DefaultReadAhead}, {"8MiB read-ahead", blockdev.TunedReadAhead}} {
		dev := fig3cStack(false, false, ra.val)
		client := dev.(*blockdev.Client)
		buf := make([]byte, 64<<10)
		for off := int64(0); off < 32<<20/blockdev.SectorSize; off += int64(len(buf) / blockdev.SectorSize) {
			if err := dev.ReadSectors(buf, off); err != nil {
				panic(err)
			}
		}
		fmt.Printf("%-20s %6d wire round trips for a 32 MiB sequential read\n", ra.name, client.NetReads())
	}
	fmt.Println("expect: LUKS ~= plain on reads, modest write cost; IPsec a major hit on both")
}

func fig4(bool) {
	header("Figure 4: provisioning time of one server")
	for _, cfg := range []struct {
		name string
		pc   core.ProvisionConfig
	}{
		{"Foreman (stateful baseline)", core.ProvisionConfig{Foreman: true}},
		{"Bolted UEFI, no attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecNone}},
		{"Bolted UEFI, attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecAttested}},
		{"Bolted UEFI, full attestation", core.ProvisionConfig{Firmware: core.FirmwareUEFI, Security: core.SecFull}},
		{"Bolted LinuxBoot, no attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecNone}},
		{"Bolted LinuxBoot, attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecAttested}},
		{"Bolted LinuxBoot, full attestation", core.ProvisionConfig{Firmware: core.FirmwareLinuxBoot, Security: core.SecFull}},
	} {
		r := core.SimulateProvisioning(cfg.pc)
		fmt.Printf("%-36s %8s\n", cfg.name, r.Makespan.Round(time.Second))
		for _, p := range r.Phases {
			fmt.Printf("    %-34s %8s\n", p.Name, p.Duration.Round(100*time.Millisecond))
		}
	}
	fmt.Println("expect: LinuxBoot unattested <3 min, attested <4 min (~+25%); UEFI full ~7 min, still ~1.6x faster than Foreman")
}

func fig5(bool) {
	header("Figure 5: concurrent provisioning (UEFI), makespan")
	fmt.Printf("%-8s %14s %14s\n", "nodes", "unattested", "attested")
	for _, n := range []int{1, 2, 4, 8, 16} {
		row := make([]time.Duration, 2)
		for i, sec := range []core.SecurityLevel{core.SecNone, core.SecAttested} {
			cfg := core.DefaultProvisionConfig()
			cfg.Firmware = core.FirmwareUEFI
			cfg.Security = sec
			cfg.Concurrency = n
			row[i] = core.SimulateProvisioning(cfg).Makespan
		}
		fmt.Printf("%-8d %14s %14s\n", n, row[0].Round(time.Second), row[1].Round(time.Second))
	}
	fmt.Println("expect: flat to 8 nodes; knee at 16 (Ceph contention; single airlock serializes attestation)")
}

func fig6(quick bool) {
	header("Figure 6: IMA overhead on a kernel compile")
	files := 1500
	if quick {
		files = 300
	}
	fmt.Printf("%-10s %12s %12s %10s\n", "threads", "no IMA", "IMA", "overhead")
	for _, threads := range []int{1, 2, 4, 8, 16, 32} {
		spec := workload.CompileSpec{Files: files, FileBytes: 8 << 10, Threads: threads, WorkFactor: 30}
		base := workload.RunKernelCompile(spec).Wall
		tp, err := tpm.New()
		if err != nil {
			panic(err)
		}
		spec.IMA = ima.NewCollector(tp, ima.StressPolicy)
		withIMA := workload.RunKernelCompile(spec).Wall
		fmt.Printf("%-10d %12s %12s %9.1f%%\n", threads,
			base.Round(time.Millisecond), withIMA.Round(time.Millisecond),
			(float64(withIMA)/float64(base)-1)*100)
	}
	fmt.Println("expect: overhead stays small at every thread count (paper: no noticeable overhead)")
}

func fig7(bool) {
	header("Figure 7: macro-benchmark degradation vs no encryption")
	fmt.Printf("%-14s %6s", "app", "kind")
	for _, sec := range workload.AllSecConfigs {
		fmt.Printf(" %12s", sec)
	}
	fmt.Println()
	for _, app := range workload.Figure7Apps {
		fmt.Printf("%-14s %6s", app.Name, app.Kind)
		for _, sec := range workload.AllSecConfigs {
			fmt.Printf(" %11.1f%%", app.Degradation(sec)*100)
		}
		fmt.Println()
	}
	fmt.Println("expect: EP ~18% / CG ~200% under IPsec; TeraSort ~30% under LUKS+IPsec; Filebench-VM ~50% under IPsec; LUKS alone cheap")
}

func figCA(bool) {
	header("§7.4: continuous attestation — detection and revocation latency")
	cfg := core.DefaultConfig()
	cfg.Nodes = 2
	cloud, err := core.NewCloud(cfg)
	if err != nil {
		panic(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
		KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
	}); err != nil {
		panic(err)
	}
	e, err := core.NewEnclave(cloud, "charlie", core.ProfileCharlie)
	if err != nil {
		panic(err)
	}
	e.IMAWhitelist().AllowContent("/usr/bin/app", []byte("app"))
	n1, err := e.AcquireNode(context.Background(), "os")
	if err != nil {
		panic(err)
	}
	n2, err := e.AcquireNode(context.Background(), "os")
	if err != nil {
		panic(err)
	}
	n1.IMA.Measure("/usr/bin/app", []byte("app"), ima.HookExec, 0)

	// Background monitoring at the paper's cadence.
	if err := e.StartContinuousAttestation(n1.Name, 100*time.Millisecond); err != nil {
		panic(err)
	}
	banned := make(chan time.Time, 1)

	// Inject the violation and poll for the cryptographic ban.
	inject := time.Now()
	n1.IMA.Measure("/tmp/unauthorized.sh", []byte("#!/bin/sh\n:"), ima.HookExec, 0)
	for {
		if _, err := e.Send(n1.Name, n2.Name, []byte("probe")); err != nil {
			banned <- time.Now()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t := <-banned
	fmt.Printf("violation injected -> node cryptographically banned in %s\n", t.Sub(inject).Round(time.Millisecond))
	fmt.Println("expect: well under the paper's ~3 s (in-process fan-out; the paper includes real network and IPsec rekey)")
}

// figBatch drives the real functional pipeline (not the timing model):
// a serial AcquireNode loop vs one concurrent AcquireNodes batch on an
// in-process cloud, with the batch's per-phase breakdown in the same
// vocabulary as the Figure-4 simulation.
func figBatch(quick bool) {
	header("Batch provisioning: serial loop vs concurrent AcquireNodes (functional path)")
	n := 8
	if quick {
		n = 4
	}
	mkEnclave := func() *core.Enclave {
		cfg := core.DefaultConfig()
		cfg.Nodes = n
		cloud, err := core.NewCloud(cfg)
		if err != nil {
			panic(err)
		}
		if _, err := cloud.BMI.CreateOSImage("os", bmi.OSImageSpec{
			KernelID: "k", Kernel: []byte("kernel"), Initrd: []byte("initrd"),
		}); err != nil {
			panic(err)
		}
		e, err := core.NewEnclave(cloud, "t", core.ProfileBob)
		if err != nil {
			panic(err)
		}
		return e
	}

	es := mkEnclave()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := es.AcquireNode(context.Background(), "os"); err != nil {
			panic(err)
		}
	}
	serial := time.Since(start)

	eb := mkEnclave()
	res, err := eb.AcquireNodes(context.Background(), "os", n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s %12s\n", "mode", "wall-clock")
	fmt.Printf("%-28s %12s\n", fmt.Sprintf("serial AcquireNode x%d", n), serial.Round(10*time.Microsecond))
	fmt.Printf("%-28s %12s\n", fmt.Sprintf("AcquireNodes batch of %d", n), res.Timings.Wall.Round(10*time.Microsecond))
	fmt.Printf("\nbatch per-phase breakdown (%d nodes):\n", len(res.Nodes))
	fmt.Printf("  %-12s %12s %12s\n", "phase", "slowest", "mean")
	for _, pt := range res.Timings.Phases {
		mean := pt.Total / time.Duration(pt.Nodes)
		fmt.Printf("  %-12s %12s %12s\n", pt.Phase, pt.Max.Round(time.Microsecond), mean.Round(time.Microsecond))
	}
	fmt.Println("expect: batch wall-clock well under the serial loop; phase names match Figure 4's groups")
}

func figNPB(quick bool) {
	header("Real NPB mini-kernels: measured communication profiles (4 ranks)")
	scale := 1
	if quick {
		scale = 4
	}
	type kernel struct {
		name string
		run  func(w *npb.World) error
	}
	kernels := []kernel{
		{"EP", func(w *npb.World) error {
			r, err := npb.RunEP(w, 200_000/scale)
			if err != nil {
				return err
			}
			return npb.VerifyEP(r)
		}},
		{"CG", func(w *npb.World) error {
			cfg := npb.DefaultCGConfig()
			r, err := npb.RunCG(w, cfg)
			if err != nil {
				return err
			}
			return npb.VerifyCG(cfg, r)
		}},
		{"MG", func(w *npb.World) error {
			r, err := npb.RunMG(w, npb.DefaultMGConfig())
			if err != nil {
				return err
			}
			return npb.VerifyMG(r)
		}},
		{"FT", func(w *npb.World) error {
			r, err := npb.RunFT(w, npb.DefaultFTConfig())
			if err != nil {
				return err
			}
			return npb.VerifyFT(r)
		}},
	}
	fmt.Printf("%-4s %10s %14s %12s   %s\n", "app", "msgs", "comm bytes", "avg msg B", "numerics")
	for _, k := range kernels {
		w, err := npb.NewWorld(4, true) // IPsec-sealed, like a Charlie enclave
		if err != nil {
			panic(err)
		}
		status := "verified"
		if err := k.run(w); err != nil {
			status = err.Error()
		}
		s := w.Stats()
		fmt.Printf("%-4s %10d %14d %12.0f   %s\n", k.name, s.Msgs, s.CommBytes,
			float64(s.CommBytes)/float64(s.Msgs), status)
	}
	fmt.Println("expect: EP a handful of messages; CG thousands of small ones; FT few bulk blocks —")
	fmt.Println("the measured profiles that drive Figure 7's per-app IPsec sensitivity")
}

func figWarm(bool) {
	header("Warm pool: cold chain vs kexec fast path (UEFI, attested), makespan for 8 nodes")
	fmt.Printf("%-10s %14s %14s %14s\n", "airlocks", "cold", "warm", "speedup")
	for _, locks := range []int{1, 2, 4} {
		pool := core.DefaultPoolPolicy()
		pool.Airlocks = locks
		row := make([]time.Duration, 2)
		for i, target := range []int{0, 8} {
			pool.Target = target
			cfg := core.DefaultProvisionConfig().WithPool(pool)
			cfg.Firmware = core.FirmwareUEFI
			cfg.Security = core.SecAttested
			cfg.Concurrency = 8
			row[i] = core.SimulateProvisioning(cfg).Makespan
		}
		fmt.Printf("%-10d %14s %14s %13.1fx\n", locks,
			row[0].Round(time.Second), row[1].Round(time.Second),
			float64(row[0])/float64(row[1]))
	}
	fmt.Println("expect: warm skips POST/PXE/agent/attest (~6 min of the UEFI chain); makespan")
	fmt.Println("shrinks further as airlocks grow because re-quotes stop serializing (§7.3)")
}
