package core

import (
	"time"

	"bolted/internal/obs"
)

// This file pre-resolves every core-layer instrument against an
// obs.Registry once, so hot paths (scheduler grants, pool takes,
// per-node phases) touch only lock-free atomics — never the registry's
// name→family map. A cloud without a registry carries a cloudMetrics
// whose instruments are all nil; obs instruments are nil-safe, so the
// uninstrumented path costs one nil check per observation and no call
// site ever guards on "is metrics enabled".

// cloudMetrics holds the cloud-scoped instruments. Always non-nil on a
// Cloud; all fields nil when no registry is attached.
type cloudMetrics struct {
	registry *obs.Registry

	// Per-phase pipeline latency, same vocabulary as BatchTimings.
	phase map[string]*obs.Histogram

	// Scheduler (sched.go).
	schedWait    map[SchedClass]*obs.Histogram
	schedGrants  *obs.CounterVec // tenant
	schedQueued  *obs.GaugeVec   // tenant
	schedInUse   *obs.Gauge
	schedPreempt *obs.Counter

	// Admission control (manager.go): ErrOverQuota rejections, the
	// server side of every /v1 429.
	quotaRejections *obs.CounterVec // tenant

	// Incidents (incident.go).
	incidentSteps    *obs.HistogramVec // step
	incidentsClosed  *obs.CounterVec   // state
	incidentSeconds  *obs.Histogram
	recoverySeconds  *obs.Gauge
	recoveredEnclave *obs.Gauge

	// Resilience (resilience.go, breaker.go).
	retries        *obs.CounterVec // backend: transient failures retried
	retryExhausted *obs.CounterVec // backend: attempt budgets exhausted
	breakerTrips   *obs.CounterVec // backend
	breakerState   *obs.GaugeVec   // backend: 0 closed, 1 half-open, 2 open
	degradedFails  *obs.Counter    // calls failed fast with ErrDegraded
	phaseDeadline  *obs.Counter    // phases that hit their deadline
}

// newCloudMetrics resolves the cloud-scoped instruments (all nil when
// reg is nil).
func newCloudMetrics(reg *obs.Registry) *cloudMetrics {
	cm := &cloudMetrics{registry: reg}
	if reg == nil {
		return cm
	}
	phases := []string{PhaseAirlock, PhaseBoot, PhaseAttest, PhaseProvision, PhaseWarmRefill, PhaseWarmRequote, PhaseWarmProvision}
	phaseVec := reg.HistogramVec("bolted_phase_seconds", "Per-node time in each Figure-1 lifecycle phase.", nil, "phase")
	cm.phase = make(map[string]*obs.Histogram, len(phases))
	for _, p := range phases {
		cm.phase[p] = phaseVec.With(p)
	}
	waitVec := reg.HistogramVec("bolted_sched_wait_seconds", "Airlock queue wait from enqueue to grant.", nil, "class")
	cm.schedWait = map[SchedClass]*obs.Histogram{
		ClassForeground: waitVec.With(ClassForeground.String()),
		ClassBackground: waitVec.With(ClassBackground.String()),
	}
	cm.schedGrants = reg.CounterVec("bolted_sched_grants_total", "Airlock slots granted, by tenant.", "tenant")
	cm.schedQueued = reg.GaugeVec("bolted_sched_queue_depth", "Requests waiting for an airlock slot, by tenant.", "tenant")
	cm.schedInUse = reg.Gauge("bolted_sched_slots_in_use", "Airlock slots currently held.")
	cm.schedPreempt = reg.Counter("bolted_sched_preemptions_total", "Background airlock holders preempted by foreground work.")
	cm.quotaRejections = reg.CounterVec("bolted_quota_rejections_total", "Acquisitions rejected over quota or backpressure (the /v1 429s).", "tenant")
	cm.incidentSteps = reg.HistogramVec("bolted_incident_step_seconds", "Time between consecutive incident response steps.", nil, "step")
	cm.incidentsClosed = reg.CounterVec("bolted_incidents_closed_total", "Incidents reaching a terminal state.", "state")
	cm.incidentSeconds = reg.Histogram("bolted_incident_seconds", "Incident open-to-close duration.", nil)
	cm.recoverySeconds = reg.Gauge("bolted_recovery_seconds", "Duration of the last crash recovery (re-quote included).")
	cm.recoveredEnclave = reg.Gauge("bolted_recovery_enclaves", "Enclaves rebuilt by the last crash recovery.")
	cm.retries = reg.CounterVec("bolted_retries_total", "Transient backend failures absorbed by the resilience retry loop.", "backend")
	cm.retryExhausted = reg.CounterVec("bolted_retry_exhausted_total", "Backend calls that failed every attempt in the retry budget.", "backend")
	cm.breakerTrips = reg.CounterVec("bolted_breaker_trips_total", "Circuit-breaker trips into the open state.", "backend")
	cm.breakerState = reg.GaugeVec("bolted_breaker_state", "Circuit-breaker state: 0 closed, 1 half-open, 2 open.", "backend")
	cm.degradedFails = reg.Counter("bolted_degraded_failfast_total", "Calls rejected fast with ErrDegraded while a breaker was open.")
	cm.phaseDeadline = reg.Counter("bolted_phase_deadline_total", "Lifecycle phases aborted by their ResiliencePolicy deadline.")
	return cm
}

// incRetry, incRetryExhausted, incBreakerTrip, setBreakerState and
// incDegradedFail fold resilience events into the instruments; all are
// nil-safe no-ops on an uninstrumented cloud.
func (cm *cloudMetrics) incRetry(backend string)          { cm.retries.With(backend).Inc() }
func (cm *cloudMetrics) incRetryExhausted(backend string) { cm.retryExhausted.With(backend).Inc() }
func (cm *cloudMetrics) incBreakerTrip(backend string)    { cm.breakerTrips.With(backend).Inc() }
func (cm *cloudMetrics) incDegradedFail()                 { cm.degradedFails.Inc() }

func (cm *cloudMetrics) setBreakerState(backend string, st BreakerState) {
	var v float64
	switch st {
	case BreakerHalfOpen:
		v = 1
	case BreakerOpen:
		v = 2
	}
	cm.breakerState.With(backend).Set(v)
}

// schedMetrics is the Scheduler's slice of the cloud instruments.
type schedMetrics struct {
	wait    map[SchedClass]*obs.Histogram
	grants  *obs.CounterVec
	queued  *obs.GaugeVec
	inUse   *obs.Gauge
	preempt *obs.Counter
}

func (cm *cloudMetrics) sched() schedMetrics {
	return schedMetrics{
		wait:    cm.schedWait,
		grants:  cm.schedGrants,
		queued:  cm.schedQueued,
		inUse:   cm.schedInUse,
		preempt: cm.schedPreempt,
	}
}

// poolMetrics is one warm pool's instrument set, labeled by enclave.
// The zero value (no registry) is a valid no-op set.
type poolMetrics struct {
	warm          *obs.Gauge
	hits          *obs.Counter
	misses        *obs.Counter
	drained       *obs.Counter
	rejected      *obs.Counter
	refillSeconds *obs.Histogram
	refillFails   *obs.Counter
}

func (cm *cloudMetrics) pool(enclave string) poolMetrics {
	reg := cm.registry
	if reg == nil {
		return poolMetrics{}
	}
	return poolMetrics{
		warm:          reg.GaugeVec("bolted_pool_warm", "Standbys parked ready in the warm pool.", "enclave").With(enclave),
		hits:          reg.CounterVec("bolted_pool_hits_total", "Acquisition slots served from the warm pool.", "enclave").With(enclave),
		misses:        reg.CounterVec("bolted_pool_misses_total", "Acquisition slots that fell back to the cold path.", "enclave").With(enclave),
		drained:       reg.CounterVec("bolted_pool_drained_total", "Standbys released back to the free pool.", "enclave").With(enclave),
		rejected:      reg.CounterVec("bolted_pool_rejected_total", "Standbys quarantined or failed during refill.", "enclave").With(enclave),
		refillSeconds: reg.HistogramVec("bolted_pool_refill_seconds", "Warm-boot latency of successful refills.", nil, "enclave").With(enclave),
		refillFails:   reg.CounterVec("bolted_pool_refill_failures_total", "Refill attempts that found no node or failed (feeds the backoff).", "enclave").With(enclave),
	}
}

// observeIncident folds one incident-status update into the incident
// instruments: the latest step's latency (measured from the previous
// step, or from detection for the first), and on a terminal state the
// closed counter and open-to-close duration.
func (cm *cloudMetrics) observeIncident(st IncidentStatus) {
	if cm.registry == nil {
		return
	}
	if n := len(st.Steps); n > 0 {
		last := st.Steps[n-1]
		prev := st.Opened
		if n > 1 {
			prev = st.Steps[n-2].At
		}
		cm.incidentSteps.With(last.Name).Observe(last.At.Sub(prev).Seconds())
	}
	if st.State.Terminal() && !st.Closed.IsZero() {
		cm.incidentsClosed.With(string(st.State)).Inc()
		cm.incidentSeconds.Observe(st.Closed.Sub(st.Opened).Seconds())
	}
}

// observePhase records one node-phase duration (provisioner and warm
// refiller call it with the canonical phase names).
func (cm *cloudMetrics) observePhase(phase string, d time.Duration) {
	cm.phase[phase].Observe(d.Seconds())
}
