package keylime

import (
	"bytes"
	"context"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"

	"bolted/internal/ima"
	"bolted/internal/tpm"
)

// This file puts the Keylime components behind REST, matching the real
// project's deployment: the agent serves quotes and accepts key shares
// over HTTP on the node; the registrar serves enrolment. A verifier (or
// tenant) anywhere on the attestation network can then drive them via
// RemoteAgent / RegistrarClient, which satisfy the same interfaces as
// the in-process objects.

// --- wire encodings ---

type wireQuote struct {
	Nonce     string   `json:"nonce"`
	PCRSel    []int    `json:"pcr_sel"`
	PCRValues []string `json:"pcr_values"`
	BootCount uint64   `json:"boot_count"`
	Sig       string   `json:"sig"`
}

func quoteToWire(q *tpm.Quote) wireQuote {
	w := wireQuote{
		Nonce:     hex.EncodeToString(q.Nonce),
		PCRSel:    q.PCRSel,
		BootCount: q.BootCount,
		Sig:       hex.EncodeToString(q.Sig),
	}
	for _, v := range q.PCRValues {
		w.PCRValues = append(w.PCRValues, hex.EncodeToString(v[:]))
	}
	return w
}

func wireToQuote(w wireQuote) (*tpm.Quote, error) {
	nonce, err := hex.DecodeString(w.Nonce)
	if err != nil {
		return nil, err
	}
	sig, err := hex.DecodeString(w.Sig)
	if err != nil {
		return nil, err
	}
	q := &tpm.Quote{Nonce: nonce, PCRSel: w.PCRSel, BootCount: w.BootCount, Sig: sig}
	for _, s := range w.PCRValues {
		raw, err := hex.DecodeString(s)
		if err != nil || len(raw) != tpm.DigestSize {
			return nil, errors.New("keylime: bad PCR value encoding")
		}
		var d tpm.Digest
		copy(d[:], raw)
		q.PCRValues = append(q.PCRValues, d)
	}
	return q, nil
}

type wireIMAEntry struct {
	Path     string `json:"path"`
	FileHash string `json:"file_hash"`
	Hook     string `json:"hook"`
}

func imaToWire(es []ima.Entry) []wireIMAEntry {
	out := make([]wireIMAEntry, 0, len(es))
	for _, e := range es {
		out = append(out, wireIMAEntry{
			Path:     e.Path,
			FileHash: hex.EncodeToString(e.FileHash[:]),
			Hook:     string(e.Hook),
		})
	}
	return out
}

func wireToIMA(ws []wireIMAEntry) ([]ima.Entry, error) {
	out := make([]ima.Entry, 0, len(ws))
	for _, w := range ws {
		raw, err := hex.DecodeString(w.FileHash)
		if err != nil || len(raw) != tpm.DigestSize {
			return nil, errors.New("keylime: bad IMA hash encoding")
		}
		e := ima.Entry{Path: w.Path, Hook: ima.Hook(w.Hook)}
		copy(e.FileHash[:], raw)
		out = append(out, e)
	}
	return out, nil
}

func encodeECDSA(pub *ecdsa.PublicKey) string {
	var xy [64]byte
	pub.X.FillBytes(xy[:32])
	pub.Y.FillBytes(xy[32:])
	return hex.EncodeToString(xy[:])
}

func decodeECDSA(s string) (*ecdsa.PublicKey, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 64 {
		return nil, errors.New("keylime: bad ECDSA key encoding")
	}
	pub := &ecdsa.PublicKey{
		Curve: elliptic.P256(),
		X:     new(big.Int).SetBytes(raw[:32]),
		Y:     new(big.Int).SetBytes(raw[32:]),
	}
	if !pub.Curve.IsOnCurve(pub.X, pub.Y) {
		return nil, errors.New("keylime: ECDSA point not on curve")
	}
	return pub, nil
}

// --- agent HTTP server ---

// NewAgentHandler serves an agent's REST API: quotes, IMA lists, and
// key-share delivery — what the real keylime agent exposes on the node.
func NewAgentHandler(a *Agent) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /quote", func(w http.ResponseWriter, r *http.Request) {
		nonce, err := hex.DecodeString(r.URL.Query().Get("nonce"))
		if err != nil || len(nonce) == 0 {
			http.Error(w, "bad nonce", http.StatusBadRequest)
			return
		}
		var sel []int
		for _, part := range strings.Split(r.URL.Query().Get("pcrs"), ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				http.Error(w, "bad pcr selection", http.StatusBadRequest)
				return
			}
			sel = append(sel, n)
		}
		q, err := a.Quote(nonce, sel, r.URL.Query().Get("from"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(quoteToWire(q))
	})
	mux.HandleFunc("GET /ima", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(imaToWire(a.IMAList()))
	})
	mux.HandleFunc("POST /keys/u", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ U string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		u, err := hex.DecodeString(req.U)
		if err != nil {
			http.Error(w, "bad key share", http.StatusBadRequest)
			return
		}
		a.ReceiveU(u)
	})
	mux.HandleFunc("POST /keys/v", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ V, Payload string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err1 := hex.DecodeString(req.V)
		payload, err2 := hex.DecodeString(req.Payload)
		if err1 != nil || err2 != nil {
			http.Error(w, "bad key share or payload", http.StatusBadRequest)
			return
		}
		a.ReceiveV(v, payload)
	})
	return mux
}

// RemoteAgent drives an agent's REST API; it satisfies AgentConn, so a
// verifier can monitor nodes it only reaches over the network.
type RemoteAgent struct {
	uuid string
	Base string
	HTTP *http.Client
}

var _ AgentConn = (*RemoteAgent)(nil)

// NewRemoteAgent returns a client for an agent at base URL.
func NewRemoteAgent(uuid, base string) *RemoteAgent {
	return &RemoteAgent{uuid: uuid, Base: base, HTTP: http.DefaultClient}
}

// UUID implements AgentConn.
func (ra *RemoteAgent) UUID() string { return ra.uuid }

// Quote implements AgentConn.
func (ra *RemoteAgent) Quote(nonce []byte, sel []int, verifierPort string) (*tpm.Quote, error) {
	parts := make([]string, len(sel))
	for i, s := range sel {
		parts[i] = strconv.Itoa(s)
	}
	q := neturl.Values{
		"nonce": {hex.EncodeToString(nonce)},
		"pcrs":  {strings.Join(parts, ",")},
		"from":  {verifierPort},
	}
	url := ra.Base + "/quote?" + q.Encode()
	resp, err := ra.HTTP.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("keylime: remote quote: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var wq wireQuote
	if err := json.NewDecoder(resp.Body).Decode(&wq); err != nil {
		return nil, err
	}
	return wireToQuote(wq)
}

// IMAList implements AgentConn. Transport failures return an empty
// list, which the verifier's aggregate check will flag.
func (ra *RemoteAgent) IMAList() []ima.Entry {
	resp, err := ra.HTTP.Get(ra.Base + "/ima")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var ws []wireIMAEntry
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return nil
	}
	es, err := wireToIMA(ws)
	if err != nil {
		return nil
	}
	return es
}

func (ra *RemoteAgent) post(path string, body interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := ra.HTTP.Post(ra.Base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("keylime: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	// Drain the (ignored, small) body so the keep-alive connection
	// goes back to the pool instead of being torn down.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// ReceiveU implements AgentConn.
func (ra *RemoteAgent) ReceiveU(u []byte) {
	_ = ra.post("/keys/u", map[string]string{"U": hex.EncodeToString(u)})
}

// ReceiveV implements AgentConn.
func (ra *RemoteAgent) ReceiveV(v, sealedPayload []byte) {
	_ = ra.post("/keys/v", map[string]string{
		"V": hex.EncodeToString(v), "Payload": hex.EncodeToString(sealedPayload),
	})
}

// --- registrar HTTP server ---

// NewRegistrarHandler serves the registrar's enrolment REST API.
func NewRegistrarHandler(reg *Registrar) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /agents/{uuid}/register", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ EK, AIK string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ekRaw, err := hex.DecodeString(req.EK)
		if err != nil {
			http.Error(w, "bad EK", http.StatusBadRequest)
			return
		}
		ek, err := ecdh.P256().NewPublicKey(ekRaw)
		if err != nil {
			http.Error(w, "bad EK point", http.StatusBadRequest)
			return
		}
		aik, err := decodeECDSA(req.AIK)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		blob, err := reg.Register(r.PathValue("uuid"), ek, aik)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{
			"ephemeral":   hex.EncodeToString(blob.EphemeralPub),
			"nonce":       hex.EncodeToString(blob.Nonce),
			"ciphertext":  hex.EncodeToString(blob.Ciphertext),
			"aik_binding": hex.EncodeToString(blob.AIKBinding[:]),
		})
	})
	mux.HandleFunc("POST /agents/{uuid}/activate", func(w http.ResponseWriter, r *http.Request) {
		var req struct{ Proof string }
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		proof, err := hex.DecodeString(req.Proof)
		if err != nil {
			http.Error(w, "bad proof", http.StatusBadRequest)
			return
		}
		if err := reg.Activate(r.PathValue("uuid"), proof); err != nil {
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
	})
	mux.HandleFunc("GET /agents/{uuid}/aik", func(w http.ResponseWriter, r *http.Request) {
		aik, err := reg.AIK(r.PathValue("uuid"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"aik": encodeECDSA(aik)})
	})
	mux.HandleFunc("GET /agents/{uuid}/ek", func(w http.ResponseWriter, r *http.Request) {
		ek, err := reg.EK(r.PathValue("uuid"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ek": hex.EncodeToString(ek.Bytes())})
	})
	return mux
}

// RegistrarClient drives a registrar's REST API; it satisfies
// RegistrarConn, so agents can enrol with — and verifiers and tenants
// can look up certified keys from — a registrar they only reach over
// the network.
type RegistrarClient struct {
	Base string
	HTTP *http.Client
}

var _ RegistrarConn = (*RegistrarClient)(nil)

// NewRegistrarClient returns a client for the registrar API at base URL.
func NewRegistrarClient(base string) *RegistrarClient {
	return &RegistrarClient{Base: base, HTTP: http.DefaultClient}
}

func (rc *RegistrarClient) post(path string, body interface{}, out interface{}) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := rc.HTTP.Post(rc.Base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("keylime: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body) // keep the connection reusable
	return nil
}

func (rc *RegistrarClient) get(path string, out interface{}) error {
	resp, err := rc.HTTP.Get(rc.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("keylime: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register implements RegistrarConn.
func (rc *RegistrarClient) Register(uuid string, ekPub *ecdh.PublicKey, aikPub *ecdsa.PublicKey) (*tpm.CredentialBlob, error) {
	if ekPub == nil || aikPub == nil {
		return nil, errors.New("keylime: registration needs EK and AIK")
	}
	var raw map[string]string
	err := rc.post("/agents/"+neturl.PathEscape(uuid)+"/register", map[string]string{
		"EK":  hex.EncodeToString(ekPub.Bytes()),
		"AIK": encodeECDSA(aikPub),
	}, &raw)
	if err != nil {
		return nil, err
	}
	blob := &tpm.CredentialBlob{}
	if blob.EphemeralPub, err = hex.DecodeString(raw["ephemeral"]); err != nil {
		return nil, err
	}
	if blob.Nonce, err = hex.DecodeString(raw["nonce"]); err != nil {
		return nil, err
	}
	if blob.Ciphertext, err = hex.DecodeString(raw["ciphertext"]); err != nil {
		return nil, err
	}
	binding, err := hex.DecodeString(raw["aik_binding"])
	if err != nil || len(binding) != tpm.DigestSize {
		return nil, errors.New("keylime: bad AIK binding")
	}
	copy(blob.AIKBinding[:], binding)
	return blob, nil
}

// Activate implements RegistrarConn.
func (rc *RegistrarClient) Activate(uuid string, proof []byte) error {
	return rc.post("/agents/"+neturl.PathEscape(uuid)+"/activate", map[string]string{
		"Proof": hex.EncodeToString(proof),
	}, nil)
}

// AIK implements RegistrarConn.
func (rc *RegistrarClient) AIK(uuid string) (*ecdsa.PublicKey, error) {
	var raw map[string]string
	if err := rc.get("/agents/"+neturl.PathEscape(uuid)+"/aik", &raw); err != nil {
		return nil, err
	}
	return decodeECDSA(raw["aik"])
}

// EK implements RegistrarConn.
func (rc *RegistrarClient) EK(uuid string) (*ecdh.PublicKey, error) {
	var raw map[string]string
	if err := rc.get("/agents/"+neturl.PathEscape(uuid)+"/ek", &raw); err != nil {
		return nil, err
	}
	ekRaw, err := hex.DecodeString(raw["ek"])
	if err != nil {
		return nil, err
	}
	return ecdh.P256().NewPublicKey(ekRaw)
}

// RegisterOverHTTP performs the agent's full enrolment dance against a
// registrar's REST endpoint. It is RegisterWith over a RegistrarClient.
func (a *Agent) RegisterOverHTTP(base, registrarPort string) error {
	return a.RegisterWith(context.Background(), NewRegistrarClient(base), registrarPort)
}
