package firmware

import (
	"crypto/sha256"
	"fmt"

	"bolted/internal/tpm"
)

// This file models the network-boot path used when LinuxBoot cannot be
// burned into flash (§5 "Putting it together"): stock UEFI PXE-loads
// iPXE, and a modified iPXE downloads the LinuxBoot runtime (Heads)
// and measures it into a TPM PCR before jumping to it, so the whole
// chain remains attestable.

// IPXEVersion identifies the provider's patched iPXE build (the paper's
// modification that adds TPM measurement of downloaded images).
const IPXEVersion = "ipxe-1.21.1+tpm-measure"

// IPXEDigest is the measurement UEFI records for the iPXE binary.
func IPXEDigest() tpm.Digest {
	return sha256.Sum256([]byte("ipxe-binary|" + IPXEVersion))
}

// IPXESize is the iPXE binary size (download cost over the management
// network).
const IPXESize = 1 << 20

// NetworkBootRuntime performs the PXE → iPXE → Heads chain on a machine
// whose flash runs stock UEFI:
//
//  1. UEFI measures and runs iPXE (PCRBootloader).
//  2. iPXE downloads the LinuxBoot runtime and measures it
//     (PCRBootloader) before executing it.
//  3. The runtime scrubs memory, exactly like flash-installed LinuxBoot.
//
// After return the machine is in the same attested state a
// flash-LinuxBoot machine reaches right after POST.
func NetworkBootRuntime(m *Machine, runtime LinuxBootImage) error {
	if !m.Powered() || m.Layer() != LayerFirmware {
		return fmt.Errorf("firmware: network boot requires firmware layer, machine is %q", m.Layer())
	}
	if err := m.TPM().Extend(PCRBootloader, IPXEDigest(), "ipxe:"+IPXEVersion); err != nil {
		return err
	}
	if err := m.TPM().Extend(PCRBootloader, runtime.Digest, "heads-runtime:"+runtime.SourceID); err != nil {
		return err
	}
	m.Memory().Scrub()
	return nil
}

// ExpectedPCRs computes the whitelist PCR values for a boot
// configuration: what PCRPlatform and PCRBootloader must contain after
// a clean boot. flashFW is the flash firmware; netRuntime is non-nil
// when the UEFI + iPXE + Heads chain is used.
func ExpectedPCRs(flashFW Firmware, netRuntime *LinuxBootImage) map[int]tpm.Digest {
	var platformEvents, bootEvents []tpm.Event
	for _, d := range flashFW.Measurements() {
		platformEvents = append(platformEvents, tpm.Event{PCR: PCRPlatform, Digest: d})
	}
	if netRuntime != nil {
		bootEvents = append(bootEvents,
			tpm.Event{PCR: PCRBootloader, Digest: IPXEDigest()},
			tpm.Event{PCR: PCRBootloader, Digest: netRuntime.Digest},
		)
	}
	replayed := tpm.ReplayLog(append(platformEvents, bootEvents...))
	out := map[int]tpm.Digest{PCRPlatform: replayed[PCRPlatform]}
	out[PCRBootloader] = replayed[PCRBootloader] // zero digest if no net boot
	return out
}
