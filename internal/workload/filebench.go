package workload

import (
	"fmt"
	"math/rand"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/minfs"
)

// This file is a miniature Filebench: a mixed file-operation workload
// (the paper's §7.5 VM experiment ran Filebench over 1000 files) driven
// against a real minfs filesystem on any block stack — RAM disk, LUKS
// volume, network block device, or NBD-over-IPsec. Unlike the analytic
// AppFilebenchVM model, every operation here performs real sector I/O
// through real encryption.

// FilebenchSpec configures a run.
type FilebenchSpec struct {
	Files     int // working-set size
	FileBytes int // mean file size
	Ops       int // total operations
	// Mix percentages (read + write + create + del should be 100).
	ReadPct, WritePct, CreatePct, DeletePct int
	Seed                                    int64
}

// DefaultFilebenchSpec approximates a scaled-down fileserver profile.
func DefaultFilebenchSpec() FilebenchSpec {
	return FilebenchSpec{
		Files:     50,
		FileBytes: 64 << 10,
		Ops:       400,
		ReadPct:   50, WritePct: 30, CreatePct: 10, DeletePct: 10,
		Seed: 1,
	}
}

// FilebenchResult reports a run.
type FilebenchResult struct {
	Wall      time.Duration
	Ops       int
	BytesRead int64
	BytesWrit int64
	Errors    int
}

// OpsPerSecond returns throughput.
func (r FilebenchResult) OpsPerSecond() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunFilebench formats a minfs on dev and drives the operation mix
// against it.
func RunFilebench(dev blockdev.Device, spec FilebenchSpec) (*FilebenchResult, error) {
	if spec.ReadPct+spec.WritePct+spec.CreatePct+spec.DeletePct != 100 {
		return nil, fmt.Errorf("workload: filebench mix must sum to 100")
	}
	fs, err := minfs.Format(dev, spec.Files*2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	body := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	// Pre-populate the working set.
	live := make([]string, 0, spec.Files)
	for i := 0; i < spec.Files; i++ {
		name := fmt.Sprintf("file%04d", i)
		if err := fs.Write(name, body(spec.FileBytes)); err != nil {
			return nil, err
		}
		live = append(live, name)
	}

	res := &FilebenchResult{Ops: spec.Ops}
	next := spec.Files
	start := time.Now()
	for op := 0; op < spec.Ops; op++ {
		dice := rng.Intn(100)
		switch {
		case dice < spec.ReadPct && len(live) > 0:
			name := live[rng.Intn(len(live))]
			data, err := fs.Read(name)
			if err != nil {
				res.Errors++
				continue
			}
			res.BytesRead += int64(len(data))
		case dice < spec.ReadPct+spec.WritePct && len(live) > 0:
			name := live[rng.Intn(len(live))]
			data := body(spec.FileBytes)
			if err := fs.Write(name, data); err != nil {
				res.Errors++
				continue
			}
			res.BytesWrit += int64(len(data))
		case dice < spec.ReadPct+spec.WritePct+spec.CreatePct:
			name := fmt.Sprintf("file%04d", next)
			next++
			data := body(spec.FileBytes)
			if err := fs.Write(name, data); err != nil {
				res.Errors++
				continue
			}
			live = append(live, name)
			res.BytesWrit += int64(len(data))
		default:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			if err := fs.Delete(live[i]); err != nil {
				res.Errors++
				continue
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}
