// Package fault is a deterministic, seeded fault injector for the
// orchestrator's service plane. It wraps the narrow backend interfaces
// (core.HILService, core.BMIService, core.NodeDriver,
// keylime.RegistrarConn) with composable per-backend profiles — error
// rate, latency spikes, indefinite hangs, torn responses, crash-at-step
// — so resilience behavior is provable under repeatable faults: the
// same seed makes the same calls fail in the same way regardless of
// goroutine interleaving.
//
// Determinism under concurrency is the design constraint. A shared
// random stream would make which call faults depend on scheduling
// order, so every decision instead hashes (seed, backend, op, key,
// attempt#): the i-th attempt of one logical operation — say
// AllocateNode("node-3") — always rolls the same number, no matter
// when it runs relative to its siblings. Retrying an operation
// advances its private attempt counter, which is exactly what lets a
// bounded retry walk out of an injected failure streak
// deterministically.
package fault

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Fault kinds, in decision precedence order.
const (
	// KindError fails the call before it reaches the backend: the
	// request was never performed.
	KindError = "error"
	// KindTorn performs the call, then loses the response: the side
	// effect is applied but the caller sees an error (the classic
	// retry-hazard failure).
	KindTorn = "torn"
	// KindHang parks the call until the context ends or the injector
	// is closed, then fails it. Per-phase deadlines exist to bound
	// exactly this.
	KindHang = "hang"
	// KindCrash fails every call to a crashed backend until Revive.
	KindCrash = "crash"
)

// Error is an injected fault. It reports itself transient — injected
// faults model service hiccups, not trust decisions — so the core
// resilience classifier retries it and circuit breakers count it.
type Error struct {
	Backend string
	Op      string
	Key     string
	Kind    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s on %s.%s(%s)", e.Kind, e.Backend, e.Op, e.Key)
}

// Transient marks injected faults retryable for the structural
// transient-vs-fatal classifier in core.
func (e *Error) Transient() bool { return true }

// Profile describes the fault mix for one backend. Rates are
// probabilities per call in [0,1]; they partition one deterministic
// roll, so HangRate+ErrorRate+TornRate+LatencyRate should not exceed 1.
type Profile struct {
	// ErrorRate injects a pre-call transient error (op not performed).
	ErrorRate float64
	// TornRate performs the op but returns an error (response lost).
	TornRate float64
	// HangRate parks the call until its context ends or the injector
	// closes.
	HangRate float64
	// LatencyRate adds Latency to the call, which then proceeds.
	LatencyRate float64
	Latency     time.Duration
	// CrashAfter crashes the backend after that many total calls: every
	// later call fails with KindCrash until Revive. 0 disables.
	CrashAfter int
}

// Stats counts injected faults per kind for one backend.
type Stats struct {
	Calls    uint64
	Injected map[string]uint64
}

// Injector makes seeded, deterministic fault decisions. One injector
// serves all four backends; wrap each with WrapHIL/WrapBMI/WrapDriver/
// WrapRegistrar.
type Injector struct {
	seed uint64

	mu       sync.Mutex
	profiles map[string]Profile
	attempts map[string]uint64 // per (backend,op,key) attempt counter
	calls    map[string]uint64 // per-backend total call count
	crashed  map[string]bool
	stats    map[string]*Stats
	done     chan struct{}
	closed   bool
}

// New returns an injector rolling from the given seed. Backends fault
// only once a Profile is Set for them.
func New(seed int64) *Injector {
	return &Injector{
		seed:     uint64(seed),
		profiles: make(map[string]Profile),
		attempts: make(map[string]uint64),
		calls:    make(map[string]uint64),
		crashed:  make(map[string]bool),
		stats:    make(map[string]*Stats),
		done:     make(chan struct{}),
	}
}

// Set installs (or replaces) a backend's fault profile.
func (i *Injector) Set(backend string, p Profile) {
	i.mu.Lock()
	i.profiles[backend] = p
	i.mu.Unlock()
}

// Revive un-crashes a backend: calls flow again and the crash-at-step
// counter restarts from the current call count.
func (i *Injector) Revive(backend string) {
	i.mu.Lock()
	if i.crashed[backend] {
		delete(i.crashed, backend)
		p := i.profiles[backend]
		p.CrashAfter = 0 // a revived backend stays up
		i.profiles[backend] = p
	}
	i.mu.Unlock()
}

// Close releases every hung call (they fail with KindHang).
func (i *Injector) Close() {
	i.mu.Lock()
	if !i.closed {
		i.closed = true
		close(i.done)
	}
	i.mu.Unlock()
}

// Stats returns a snapshot of per-backend fault counts.
func (i *Injector) StatsFor(backend string) Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	s := i.stats[backend]
	if s == nil {
		return Stats{Injected: map[string]uint64{}}
	}
	out := Stats{Calls: s.Calls, Injected: make(map[string]uint64, len(s.Injected))}
	for k, v := range s.Injected {
		out.Injected[k] = v
	}
	return out
}

// roll returns this call's deterministic decision value in [0,1): the
// FNV-1a hash of (seed, backend, op, key, attempt#), where attempt# is
// the call's position in its operation's private sequence.
func (i *Injector) roll(backend, op, key string) float64 {
	ak := backend + "\x00" + op + "\x00" + key
	n := i.attempts[ak]
	i.attempts[ak] = n + 1
	h := fnv.New64a()
	var buf [8]byte
	for shift := 0; shift < 64; shift += 8 {
		buf[shift/8] = byte(i.seed >> shift)
	}
	h.Write(buf[:])
	h.Write([]byte(ak))
	for shift := 0; shift < 64; shift += 8 {
		buf[shift/8] = byte(n >> shift)
	}
	h.Write(buf[:])
	// 53 bits of hash → uniform float64 in [0,1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

type decision struct {
	kind    string // "" = no fault
	latency time.Duration
}

func (i *Injector) decide(backend, op, key string) decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	p, ok := i.profiles[backend]
	if !ok {
		return decision{}
	}
	st := i.stats[backend]
	if st == nil {
		st = &Stats{Injected: make(map[string]uint64)}
		i.stats[backend] = st
	}
	st.Calls++
	i.calls[backend]++
	if i.crashed[backend] {
		st.Injected[KindCrash]++
		return decision{kind: KindCrash}
	}
	if p.CrashAfter > 0 && i.calls[backend] > uint64(p.CrashAfter) {
		i.crashed[backend] = true
		st.Injected[KindCrash]++
		return decision{kind: KindCrash}
	}
	r := i.roll(backend, op, key)
	switch {
	case r < p.HangRate:
		st.Injected[KindHang]++
		return decision{kind: KindHang}
	case r < p.HangRate+p.ErrorRate:
		st.Injected[KindError]++
		return decision{kind: KindError}
	case r < p.HangRate+p.ErrorRate+p.TornRate:
		st.Injected[KindTorn]++
		return decision{kind: KindTorn}
	case r < p.HangRate+p.ErrorRate+p.TornRate+p.LatencyRate:
		st.Injected["latency"]++
		return decision{latency: p.Latency}
	}
	return decision{}
}

// hang parks until the context ends or the injector closes.
func (i *Injector) hang(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-i.done:
	}
}

// do runs one wrapped call: decide, maybe delay/hang, maybe fail
// before or after the inner call. key scopes the attempt counter to
// one logical operation (typically the node or image name).
func (i *Injector) do(ctx context.Context, backend, op, key string, fn func() error) error {
	d := i.decide(backend, op, key)
	if d.latency > 0 {
		t := time.NewTimer(d.latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return &Error{Backend: backend, Op: op, Key: key, Kind: KindHang}
		case <-i.done:
			t.Stop()
		}
	}
	switch d.kind {
	case KindHang:
		i.hang(ctx)
		return &Error{Backend: backend, Op: op, Key: key, Kind: KindHang}
	case KindError, KindCrash:
		return &Error{Backend: backend, Op: op, Key: key, Kind: d.kind}
	case KindTorn:
		_ = fn() // side effect applied; response lost
		return &Error{Backend: backend, Op: op, Key: key, Kind: KindTorn}
	}
	return fn()
}

// do1 is do for single-value-returning calls.
func do1[T any](i *Injector, ctx context.Context, backend, op, key string, fn func() (T, error)) (T, error) {
	var out T
	err := i.do(ctx, backend, op, key, func() error {
		var err error
		out, err = fn()
		return err
	})
	if err != nil {
		// An injected error loses the response even when the inner call
		// ran (torn semantics): return the zero value, never out.
		var zero T
		return zero, err
	}
	return out, nil
}
