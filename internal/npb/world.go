// Package npb implements miniature but *real* versions of the NAS
// Parallel Benchmarks the paper evaluates (EP, CG, MG, FT): actual
// numerical kernels running on an in-process message-passing world,
// optionally with every message sealed and opened through the IPsec
// substrate. They serve three purposes: realistic example workloads for
// enclaves, validation that each benchmark's communication:compute
// profile matches the premise behind the Figure-7 model (EP barely
// communicates, CG exchanges many small messages, FT moves bulk
// all-to-all traffic), and numerics tests that the kernels are not
// stubs (EP's Gaussian counts, CG's eigenvalue, MG's residual, FT's
// round-trip all verify).
package npb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"bolted/internal/ipsec"
)

// Stats aggregates a run's communication behaviour across all ranks.
type Stats struct {
	Msgs      int64
	CommBytes int64
}

// World is a fixed-size group of ranks exchanging point-to-point
// messages, like a tiny MPI communicator.
type World struct {
	size   int
	chans  [][]chan []byte // chans[src][dst]
	seal   [][]*ipsec.Endpoint
	msgs   atomic.Int64
	bytes  atomic.Int64
	secure bool
}

// NewWorld creates a world of n ranks. With secure=true every message
// really traverses an ESP tunnel (seal on send, open on receive) using
// hardware AES, like a Charlie enclave.
func NewWorld(n int, secure bool) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("npb: world size %d", n)
	}
	w := &World{size: n, secure: secure}
	w.chans = make([][]chan []byte, n)
	for i := range w.chans {
		w.chans[i] = make([]chan []byte, n)
		for j := range w.chans[i] {
			w.chans[i][j] = make(chan []byte, 64)
		}
	}
	if secure {
		w.seal = make([][]*ipsec.Endpoint, n)
		for i := range w.seal {
			w.seal[i] = make([]*ipsec.Endpoint, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b, err := ipsec.NewPair(ipsec.SuiteHWAES, ipsec.NewMasterKey())
				if err != nil {
					return nil, err
				}
				w.seal[i][j] = a
				w.seal[j][i] = b
			}
		}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the accumulated communication counters.
func (w *World) Stats() Stats {
	return Stats{Msgs: w.msgs.Load(), CommBytes: w.bytes.Load()}
}

// Comm is one rank's handle on the world.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Send transmits data to rank dst.
func (c *Comm) Send(dst int, data []byte) error {
	w := c.w
	w.msgs.Add(1)
	w.bytes.Add(int64(len(data)))
	payload := data
	if w.secure && dst != c.rank {
		pkt, err := w.seal[c.rank][dst].Send(data)
		if err != nil {
			return err
		}
		payload = pkt
	} else {
		payload = append([]byte(nil), data...)
	}
	w.chans[c.rank][dst] <- payload
	return nil
}

// Recv receives the next message from rank src.
func (c *Comm) Recv(src int) ([]byte, error) {
	w := c.w
	payload := <-w.chans[src][c.rank]
	if w.secure && src != c.rank {
		return w.seal[c.rank][src].Recv(payload)
	}
	return payload, nil
}

// Run executes fn on every rank concurrently and waits; the first
// error wins.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(&Comm{w: w, rank: r})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- typed helpers ---

func encodeF64s(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
	}
	return b
}

func decodeF64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// SendF64s sends a float64 vector.
func (c *Comm) SendF64s(dst int, xs []float64) error { return c.Send(dst, encodeF64s(xs)) }

// RecvF64s receives a float64 vector.
func (c *Comm) RecvF64s(src int) ([]float64, error) {
	b, err := c.Recv(src)
	if err != nil {
		return nil, err
	}
	return decodeF64s(b), nil
}

// AllReduceSum sums each element of x across ranks (naive: gather to
// rank 0, broadcast back — two messages per rank, like small-cluster
// collectives).
func (c *Comm) AllReduceSum(x []float64) ([]float64, error) {
	if c.rank != 0 {
		if err := c.SendF64s(0, x); err != nil {
			return nil, err
		}
		return c.RecvF64s(0)
	}
	acc := append([]float64(nil), x...)
	for src := 1; src < c.Size(); src++ {
		xs, err := c.RecvF64s(src)
		if err != nil {
			return nil, err
		}
		for i := range acc {
			acc[i] += xs[i]
		}
	}
	for dst := 1; dst < c.Size(); dst++ {
		if err := c.SendF64s(dst, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// AllGatherF64s concatenates each rank's slice in rank order on every
// rank. Slices must have equal length.
func (c *Comm) AllGatherF64s(mine []float64) ([]float64, error) {
	n := c.Size()
	out := make([]float64, len(mine)*n)
	copy(out[c.rank*len(mine):], mine)
	// Ring exchange: n-1 rounds.
	cur := mine
	curOwner := c.rank
	for step := 0; step < n-1; step++ {
		next := (c.rank + 1) % n
		prev := (c.rank - 1 + n) % n
		if err := c.SendF64s(next, cur); err != nil {
			return nil, err
		}
		got, err := c.RecvF64s(prev)
		if err != nil {
			return nil, err
		}
		curOwner = (curOwner - 1 + n) % n
		copy(out[curOwner*len(mine):], got)
		cur = got
	}
	return out, nil
}

// AllToAll sends chunk[j] to rank j and returns the received chunks in
// rank order (the FT transpose pattern).
func (c *Comm) AllToAll(chunks [][]byte) ([][]byte, error) {
	n := c.Size()
	if len(chunks) != n {
		return nil, fmt.Errorf("npb: alltoall needs %d chunks, got %d", n, len(chunks))
	}
	for j := 0; j < n; j++ {
		if err := c.Send(j, chunks[j]); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, n)
	for j := 0; j < n; j++ {
		b, err := c.Recv(j)
		if err != nil {
			return nil, err
		}
		out[j] = b
	}
	return out, nil
}

// Barrier synchronizes all ranks.
func (c *Comm) Barrier() error {
	_, err := c.AllReduceSum([]float64{0})
	return err
}
