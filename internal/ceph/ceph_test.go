package ceph

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"bolted/internal/blockdev"
	"bolted/internal/sim"
)

func newCluster(t testing.TB, osds, repl int) *Cluster {
	t.Helper()
	c, err := NewCluster(osds, repl)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetDelete(t *testing.T) {
	c := newCluster(t, 3, 2)
	data := []byte("object body")
	if err := c.Put("pool/obj", data); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("pool/obj")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if n := c.ReplicaCount("pool/obj"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	c.Delete("pool/obj")
	if _, ok := c.Get("pool/obj"); ok {
		t.Fatal("deleted object still readable")
	}
	if n := c.ReplicaCount("pool/obj"); n != 0 {
		t.Fatalf("replicas after delete = %d", n)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewCluster(0, 1); err == nil {
		t.Error("zero OSDs accepted")
	}
	if _, err := NewCluster(3, 4); err == nil {
		t.Error("replication > OSDs accepted")
	}
	if _, err := NewCluster(3, 0); err == nil {
		t.Error("zero replication accepted")
	}
	c := newCluster(t, 3, 1)
	if err := c.Put("big", make([]byte, ObjectSize+1)); err == nil {
		t.Error("oversized object accepted")
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	c := newCluster(t, 9, 3)
	counts := make(map[int]int)
	for i := 0; i < 500; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i))
		p1 := c.PrimaryOSD(name)
		p2 := c.PrimaryOSD(name)
		if p1 != p2 {
			t.Fatal("placement not deterministic")
		}
		counts[p1]++
	}
	// Every OSD should get a share; rendezvous hashing is near-uniform.
	for i := 0; i < 9; i++ {
		if counts[i] == 0 {
			t.Fatalf("OSD %d received no objects: %v", i, counts)
		}
	}
}

func TestPrefixOps(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.Put("img-golden.00000000", []byte("a"))
	c.Put("img-golden.00000001", []byte("b"))
	c.Put("other.00000000", []byte("c"))
	names := c.ListPrefix("img-golden.")
	if len(names) != 2 {
		t.Fatalf("ListPrefix = %v", names)
	}
	if err := c.CopyPrefix("img-golden.", "img-clone."); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("img-clone.00000001")
	if !ok || string(got) != "b" {
		t.Fatal("clone missing object")
	}
	c.DeletePrefix("img-golden.")
	if len(c.ListPrefix("img-golden.")) != 0 {
		t.Fatal("DeletePrefix left objects")
	}
	if len(c.ListPrefix("img-clone.")) != 2 {
		t.Fatal("DeletePrefix removed wrong prefix")
	}
	if c.TotalObjects() != 3 {
		t.Fatalf("TotalObjects = %d, want 3", c.TotalObjects())
	}
}

func TestImageDeviceRoundTrip(t *testing.T) {
	c := newCluster(t, 3, 2)
	const size = 10 << 20 // spans 3 objects
	dev, err := NewImageDevice(c, "img", size)
	if err != nil {
		t.Fatal(err)
	}
	if dev.NumSectors() != size/blockdev.SectorSize {
		t.Fatalf("NumSectors = %d", dev.NumSectors())
	}
	// Unwritten regions read as zeros.
	buf := make([]byte, 2*blockdev.SectorSize)
	if err := dev.ReadSectors(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, len(buf))) {
		t.Fatal("unwritten sectors not zero")
	}
	// Write spanning an object boundary (4 MiB = sector 8192).
	data := make([]byte, 4*blockdev.SectorSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	boundary := int64(ObjectSize/blockdev.SectorSize) - 2
	if err := dev.WriteSectors(data, boundary); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := dev.ReadSectors(got, boundary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-object write lost data")
	}
	if c.TotalObjects() != 2 {
		t.Fatalf("objects materialized = %d, want 2", c.TotalObjects())
	}
}

func TestImageDeviceBounds(t *testing.T) {
	c := newCluster(t, 3, 1)
	dev, _ := NewImageDevice(c, "img", 1<<20)
	buf := make([]byte, blockdev.SectorSize)
	if err := dev.ReadSectors(buf, dev.NumSectors()); err == nil {
		t.Error("read past end accepted")
	}
	if err := dev.WriteSectors(buf, -1); err == nil {
		t.Error("negative write accepted")
	}
	if err := dev.ReadSectors(make([]byte, 7), 0); err == nil {
		t.Error("unaligned buffer accepted")
	}
	if _, err := NewImageDevice(c, "x", 100); err == nil {
		t.Error("unaligned image size accepted")
	}
}

// Property: ImageDevice behaves like a flat RAM disk.
func TestQuickImageDeviceEquivalence(t *testing.T) {
	c := newCluster(t, 5, 2)
	const size = 1 << 20
	dev, _ := NewImageDevice(c, "img", size)
	ref, _ := blockdev.NewRAMDisk(size)
	f := func(sector uint16, content [blockdev.SectorSize]byte) bool {
		s := int64(sector) % dev.NumSectors()
		if err := dev.WriteSectors(content[:], s); err != nil {
			return false
		}
		if err := ref.WriteSectors(content[:], s); err != nil {
			return false
		}
		a := make([]byte, 4*blockdev.SectorSize)
		b := make([]byte, 4*blockdev.SectorSize)
		start := s
		if start+4 > dev.NumSectors() {
			start = dev.NumSectors() - 4
		}
		if err := dev.ReadSectors(a, start); err != nil {
			return false
		}
		if err := ref.ReadSectors(b, start); err != nil {
			return false
		}
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOSDFailover(t *testing.T) {
	c := newCluster(t, 3, 2)
	data := []byte("replicated object")
	if err := c.Put("obj", data); err != nil {
		t.Fatal(err)
	}
	primary := c.PrimaryOSD("obj")
	if err := c.SetOSDDown(primary, true); err != nil {
		t.Fatal(err)
	}
	// Reads fail over to the surviving replica.
	got, ok := c.Get("obj")
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("read did not fail over to replica")
	}
	// Writes land on survivors.
	if err := c.Put("obj2", []byte("degraded write")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("obj2"); !ok {
		t.Fatal("degraded write unreadable")
	}
	// Recovery: the primary rejoins (without backfill) and reads still
	// work via whichever replica holds the object.
	c.SetOSDDown(primary, false)
	if _, ok := c.Get("obj2"); !ok {
		t.Fatal("object lost after primary recovery")
	}
	if err := c.SetOSDDown(99, true); err == nil {
		t.Fatal("marking unknown OSD down accepted")
	}
}

func TestAllReplicasDownFails(t *testing.T) {
	c := newCluster(t, 2, 2)
	for i := 0; i < 2; i++ {
		c.SetOSDDown(i, true)
	}
	if err := c.Put("obj", []byte("x")); err == nil {
		t.Fatal("write with all replicas down accepted")
	}
	if _, ok := c.Get("obj"); ok {
		t.Fatal("read with all replicas down succeeded")
	}
}

// A node keeps booting through an OSD host failure — the availability
// argument for the replicated boot-image pool.
func TestImageDeviceSurvivesOSDFailure(t *testing.T) {
	c := newCluster(t, 3, 2)
	dev, _ := NewImageDevice(c, "img", 8<<20)
	data := make([]byte, 8*blockdev.SectorSize)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if err := dev.WriteSectors(data, 0); err != nil {
		t.Fatal(err)
	}
	c.SetOSDDown(0, true)
	got := make([]byte, len(data))
	if err := dev.ReadSectors(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("image read corrupted by OSD failure")
	}
}

func TestSimBackendContention(t *testing.T) {
	// With few spindles, concurrent image reads queue: total time for 8
	// concurrent readers must exceed 4x a single reader's time (the
	// Figure 5 knee mechanism).
	run := func(readers int) time.Duration {
		s := sim.New(1)
		cluster := newCluster(t, 3, 2)
		backend := NewSimBackend(s, cluster, 3) // 9 spindles
		for i := 0; i < readers; i++ {
			s.Go("reader", func(p *sim.Proc) {
				backend.ChargeImageRead(p, "golden", 64<<20)
			})
		}
		return s.Run()
	}
	one := run(1)
	eight := run(8)
	sixteen := run(16)
	if eight < one {
		t.Fatalf("8 readers (%v) faster than 1 (%v)", eight, one)
	}
	if sixteen <= eight {
		t.Fatalf("16 readers (%v) not slower than 8 (%v): no contention modelled", sixteen, eight)
	}
}

// TestPutCopiesButPutOwnedDoesNot pins the buffer-ownership contract:
// Put must isolate the store from caller mutation, PutOwned must not
// pay that copy (ownership transfers).
func TestPutCopiesButPutOwnedDoesNot(t *testing.T) {
	c := newCluster(t, 3, 2)
	buf := []byte("mutable caller buffer")
	if err := c.Put("safe", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := c.Get("safe")
	if got[0] == 'X' {
		t.Fatal("Put did not defensively copy")
	}

	owned := []byte("transferred buffer")
	if err := c.PutOwned("owned", owned); err != nil {
		t.Fatal(err)
	}
	stored, _ := c.Get("owned")
	if &stored[0] != &owned[0] {
		t.Fatal("PutOwned copied despite ownership transfer")
	}
}

// TestReadAt reads partial extents without exposing internal slices.
func TestReadAt(t *testing.T) {
	c := newCluster(t, 3, 2)
	obj := []byte("0123456789")
	c.PutOwned("o", obj)
	dst := make([]byte, 4)
	if n, ok := c.ReadAt("o", dst, 3); !ok || n != 4 || string(dst) != "3456" {
		t.Fatalf("ReadAt mid = %q n=%d ok=%v", dst, n, ok)
	}
	// Reading past the end is short, past-the-object is zero.
	if n, ok := c.ReadAt("o", dst, 8); !ok || n != 2 {
		t.Fatalf("ReadAt tail n=%d ok=%v", n, ok)
	}
	if n, ok := c.ReadAt("o", dst, 100); !ok || n != 0 {
		t.Fatalf("ReadAt beyond n=%d ok=%v", n, ok)
	}
	if _, ok := c.ReadAt("missing", dst, 0); ok {
		t.Fatal("ReadAt found a missing object")
	}
	if l, ok := c.ObjectLen("o"); !ok || l != len(obj) {
		t.Fatalf("ObjectLen = %d ok=%v", l, ok)
	}
}

// TestReadAtFailsOver mirrors the Get failover semantics.
func TestReadAtFailsOver(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.PutOwned("o", []byte("replicated"))
	primary := c.PrimaryOSD("o")
	if err := c.SetOSDDown(primary, true); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 10)
	if n, ok := c.ReadAt("o", dst, 0); !ok || string(dst[:n]) != "replicated" {
		t.Fatalf("ReadAt did not fail over: %q ok=%v", dst[:n], ok)
	}
}

// TestImageDeviceVectorEquivalence drives the native scatter-gather
// paths across object boundaries and checks byte equivalence with the
// contiguous path.
func TestImageDeviceVectorEquivalence(t *testing.T) {
	c := newCluster(t, 3, 2)
	// Small image spanning two objects.
	size := int64(ObjectSize + ObjectSize/2)
	d, err := NewImageDevice(c, "img", size)
	if err != nil {
		t.Fatal(err)
	}
	// Straddle the object boundary with unevenly-split buffers.
	span := 64 * blockdev.SectorSize
	data := make([]byte, span)
	for i := range data {
		data[i] = byte(i * 13)
	}
	start := int64(ObjectSize/blockdev.SectorSize) - 32 // 32 sectors each side
	parts := [][]byte{data[:1000], data[1000:5000], data[5000:]}
	if err := d.WriteVector(parts, start); err != nil {
		t.Fatal(err)
	}
	flat := make([]byte, span)
	if err := d.ReadSectors(flat, start); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flat, data) {
		t.Fatal("vector write across object boundary lost bytes")
	}
	got := make([]byte, span)
	back := [][]byte{got[:3], got[3:30000], got[30000:]}
	if err := d.ReadVector(back, start); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("vector read across object boundary lost bytes")
	}
	// Partial overwrite in the middle of an existing object must
	// preserve surrounding bytes (the rebuild-once path).
	patch := bytes.Repeat([]byte{0xEE}, blockdev.SectorSize)
	if err := d.WriteSectors(patch, start+5); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSectors(flat, start); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[5*blockdev.SectorSize:], patch)
	if !bytes.Equal(flat, want) {
		t.Fatal("partial overwrite corrupted surrounding bytes")
	}
}
