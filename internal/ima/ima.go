// Package ima models the Linux Integrity Measurement Architecture as
// used by Bolted's continuous attestation (§7.4 of the paper). IMA hashes
// every file the policy covers on first use, appends an entry to a
// measurement list, and extends a template hash of the entry into TPM
// PCR 10, building a hash chain rooted in hardware. A remote verifier
// replays the list, checks the aggregate against a TPM quote, and matches
// every file hash against a tenant whitelist.
package ima

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"bolted/internal/tpm"
)

// PCR is the platform configuration register IMA extends (Linux default).
const PCR = 10

// Hook identifies which IMA policy hook observed a file.
type Hook string

// Hooks modelled from the paper's policy: "measure all files that are
// executed as well as all files read by the root user".
const (
	HookExec Hook = "bprm_check" // file executed
	HookRead Hook = "file_check" // file opened for read
)

// Entry is one measurement-list record (ima-ng template: file hash plus
// pathname, here with the triggering hook retained for tests).
type Entry struct {
	Path     string
	FileHash tpm.Digest
	Hook     Hook
}

// TemplateHash computes the digest extended into PCR 10 for an entry.
func TemplateHash(e Entry) tpm.Digest {
	h := sha256.New()
	h.Write([]byte("ima-ng\x00"))
	h.Write(e.FileHash[:])
	h.Write([]byte(e.Path))
	h.Write([]byte{0})
	var out tpm.Digest
	copy(out[:], h.Sum(nil))
	return out
}

// Policy decides which accesses are measured. The zero value measures
// nothing.
type Policy struct {
	MeasureExec      bool // measure every executed file
	MeasureRootReads bool // measure every file read by uid 0
}

// StressPolicy is the paper's §7.4 stress configuration: all execs and
// all root reads (the kernel compile was run as root so everything is
// measured).
var StressPolicy = Policy{MeasureExec: true, MeasureRootReads: true}

// covers reports whether the policy measures an access.
func (p Policy) covers(hook Hook, uid int) bool {
	switch hook {
	case HookExec:
		return p.MeasureExec
	case HookRead:
		return p.MeasureRootReads && uid == 0
	default:
		return false
	}
}

// Collector is the kernel-side measurement engine for one node. Safe for
// concurrent use (the kernel compile experiment measures from many
// workers).
type Collector struct {
	tpm    *tpm.TPM
	policy Policy

	mu      sync.Mutex
	entries []Entry
	seen    map[string]tpm.Digest // measure-on-first-use cache: path -> last hash
}

// NewCollector attaches an IMA collector to a TPM with the given policy.
func NewCollector(t *tpm.TPM, policy Policy) *Collector {
	return &Collector{tpm: t, policy: policy, seen: make(map[string]tpm.Digest)}
}

// Measure records an access to path with the given content. It returns
// whether a new measurement was actually taken: re-reading an unchanged
// file is free (the kernel caches by inode), but changed content is
// re-measured, which is what lets the verifier detect tampering.
func (c *Collector) Measure(path string, content []byte, hook Hook, uid int) bool {
	if !c.policy.covers(hook, uid) {
		return false
	}
	fileHash := sha256.Sum256(content)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.seen[path]; ok && prev == fileHash {
		return false
	}
	c.seen[path] = fileHash
	e := Entry{Path: path, FileHash: fileHash, Hook: hook}
	// Append and extend under one lock, like the kernel's ima_mutex:
	// the measurement list order must equal the PCR extend order or the
	// verifier's replay can never match the quote.
	c.entries = append(c.entries, e)
	if err := c.tpm.Extend(PCR, TemplateHash(e), "ima:"+path); err != nil {
		panic(fmt.Sprintf("ima: extend failed: %v", err))
	}
	return true
}

// List returns a copy of the measurement list.
func (c *Collector) List() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Entry(nil), c.entries...)
}

// Len returns the number of measurement entries.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ReplayAggregate folds a measurement list into the PCR-10 value it
// implies, for comparison against a quoted PCR 10.
func ReplayAggregate(entries []Entry) tpm.Digest {
	var agg tpm.Digest
	for _, e := range entries {
		th := TemplateHash(e)
		h := sha256.New()
		h.Write(agg[:])
		h.Write(th[:])
		copy(agg[:], h.Sum(nil))
	}
	return agg
}

// Whitelist is the tenant-provided database of acceptable file hashes:
// for each path, the set of allowed content hashes (several versions of
// a binary may be acceptable).
type Whitelist struct {
	mu      sync.RWMutex
	allowed map[string]map[tpm.Digest]bool
}

// NewWhitelist returns an empty whitelist.
func NewWhitelist() *Whitelist {
	return &Whitelist{allowed: make(map[string]map[tpm.Digest]bool)}
}

// Allow permits a specific content hash for a path.
func (w *Whitelist) Allow(path string, hash tpm.Digest) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.allowed[path]
	if m == nil {
		m = make(map[tpm.Digest]bool)
		w.allowed[path] = m
	}
	m[hash] = true
}

// AllowContent permits the SHA-256 of content for a path.
func (w *Whitelist) AllowContent(path string, content []byte) {
	w.Allow(path, sha256.Sum256(content))
}

// Len returns the number of whitelisted paths.
func (w *Whitelist) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.allowed)
}

// Violation describes a measurement that the whitelist does not permit.
type Violation struct {
	Entry  Entry
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (hash %x)", v.Entry.Path, v.Reason, v.Entry.FileHash[:8])
}

// Check matches every entry against the whitelist and returns all
// violations: unknown paths and known paths with unapproved hashes.
func (w *Whitelist) Check(entries []Entry) []Violation {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []Violation
	for _, e := range entries {
		hashes, ok := w.allowed[e.Path]
		if !ok {
			out = append(out, Violation{Entry: e, Reason: "path not in whitelist"})
			continue
		}
		if !hashes[e.FileHash] {
			out = append(out, Violation{Entry: e, Reason: "hash not approved for path"})
		}
	}
	return out
}
