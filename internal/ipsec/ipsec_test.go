package ipsec

import (
	"bytes"
	"encoding/binary"
	"errors"
	mrand "math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func newTunnel(t testing.TB, suite Suite) (*Endpoint, *Endpoint) {
	t.Helper()
	a, b, err := NewPair(suite, []byte("pre-shared-key-for-tests-32bytes"))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestRoundTripBothSuites(t *testing.T) {
	for _, suite := range []Suite{SuiteHWAES, SuiteSWAES} {
		t.Run(suite.String(), func(t *testing.T) {
			a, b := newTunnel(t, suite)
			msg := []byte("enclave traffic")
			pkt, err := a.Send(msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := b.Recv(pkt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("got %q want %q", got, msg)
			}
			// Reverse direction uses an independent SA.
			pkt2, _ := b.Send([]byte("reply"))
			got2, err := a.Recv(pkt2)
			if err != nil || string(got2) != "reply" {
				t.Fatalf("reverse direction failed: %v", err)
			}
		})
	}
}

func TestSuitesInteroperate(t *testing.T) {
	// A software-AES endpoint must interoperate with a hardware-AES
	// endpoint given the same PSK: the suite changes speed, not format.
	key := NewMasterKey()
	aHW, _, err := NewPair(SuiteHWAES, key)
	if err != nil {
		t.Fatal(err)
	}
	_, bSW, err := NewPair(SuiteSWAES, key)
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := aHW.Send([]byte("cross"))
	got, err := bSW.Recv(pkt)
	if err != nil || string(got) != "cross" {
		t.Fatalf("HW->SW failed: %v", err)
	}
}

func TestCiphertextNotPlaintext(t *testing.T) {
	a, _ := newTunnel(t, SuiteHWAES)
	msg := bytes.Repeat([]byte("secret"), 100)
	pkt, _ := a.Send(msg)
	if bytes.Contains(pkt, []byte("secretsecret")) {
		t.Fatal("plaintext visible in packet")
	}
	if len(pkt) != len(msg)+12+TagOverhead {
		t.Fatalf("packet length %d, want %d", len(pkt), len(msg)+12+TagOverhead)
	}
}

func TestTamperDetected(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	pkt, _ := a.Send([]byte("payload"))
	for _, idx := range []int{12, len(pkt) - 1} {
		bad := append([]byte(nil), pkt...)
		bad[idx] ^= 0x40
		if _, err := b.Recv(bad); !errors.Is(err, ErrAuth) {
			t.Errorf("tamper at byte %d: err = %v, want ErrAuth", idx, err)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	pkt, _ := a.Send([]byte("once"))
	if _, err := b.Recv(pkt); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(pkt); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay: err = %v, want ErrReplay", err)
	}
}

func TestOutOfOrderWithinWindow(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	var pkts [][]byte
	for i := 0; i < 10; i++ {
		p, _ := a.Send([]byte{byte(i)})
		pkts = append(pkts, p)
	}
	// Deliver newest first, then the rest: all must be accepted once.
	order := []int{9, 3, 7, 0, 1, 2, 4, 5, 6, 8}
	for _, i := range order {
		if _, err := b.Recv(pkts[i]); err != nil {
			t.Fatalf("packet %d rejected: %v", i, err)
		}
	}
	// Any second delivery fails.
	for _, i := range []int{0, 5, 9} {
		if _, err := b.Recv(pkts[i]); !errors.Is(err, ErrReplay) {
			t.Fatalf("dup %d: err = %v, want ErrReplay", i, err)
		}
	}
}

func TestStaleBeyondWindowRejected(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	old, _ := a.Send([]byte("old"))
	for i := 0; i < replayWindowSize+8; i++ {
		p, _ := a.Send([]byte("fill"))
		if _, err := b.Recv(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Recv(old); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale packet: err = %v, want ErrReplay", err)
	}
}

func TestRevocationBansNode(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	pre, _ := a.Send([]byte("before"))
	if _, err := b.Recv(pre); err != nil {
		t.Fatal(err)
	}
	// Keylime detects a violation and revokes the compromised node's
	// keys: both directions die.
	a.Revoke()
	b.Revoke()
	if _, err := a.Send([]byte("x")); !errors.Is(err, ErrRevoked) {
		t.Fatalf("send after revoke: %v", err)
	}
	if _, err := b.Recv(pre); !errors.Is(err, ErrRevoked) {
		t.Fatalf("recv after revoke: %v", err)
	}
}

func TestWrongSPIRejected(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	pkt, _ := a.Send([]byte("x"))
	pkt[0] ^= 0xFF
	if _, err := b.Recv(pkt); err == nil {
		t.Fatal("wrong SPI accepted")
	}
}

func TestShortPacketRejected(t *testing.T) {
	_, b := newTunnel(t, SuiteHWAES)
	if _, err := b.Recv(make([]byte, 8)); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestDifferentKeysCannotTalk(t *testing.T) {
	a1, _, _ := NewPair(SuiteHWAES, bytes.Repeat([]byte{1}, 32))
	_, b2, _ := NewPair(SuiteHWAES, bytes.Repeat([]byte{2}, 32))
	pkt, _ := a1.Send([]byte("x"))
	if _, err := b2.Recv(pkt); err == nil {
		t.Fatal("cross-key packet accepted")
	}
}

func TestSegmentReassemble(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	stream := make([]byte, 100_000)
	for i := range stream {
		stream[i] = byte(i * 31)
	}
	for _, mtu := range []int{1500, 9000} {
		pkts, err := SegmentStream(a, stream, mtu)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			if len(p) > mtu-40 {
				t.Fatalf("packet %d exceeds MTU budget %d", len(p), mtu)
			}
		}
		got, err := ReassembleStream(b, pkts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, stream) {
			t.Fatalf("mtu %d: reassembled stream differs", mtu)
		}
	}
	if _, err := SegmentStream(a, stream, 50); err == nil {
		t.Fatal("tiny MTU accepted")
	}
}

func TestLifetimeAndRekey(t *testing.T) {
	key := NewMasterKey()
	a, b, err := NewPair(SuiteHWAES, key)
	if err != nil {
		t.Fatal(err)
	}
	a.Out.SetLifetime(0, 3) // 3 packets then rekey required
	for i := 0; i < 3; i++ {
		pkt, err := a.Send([]byte("x"))
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if _, err := b.Recv(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Send([]byte("x")); !errors.Is(err, ErrExpired) {
		t.Fatalf("4th packet: %v, want ErrExpired", err)
	}
	// Rekeying restores service with fresh sequence state.
	if err := RekeyPair(a, b, SuiteHWAES, NewMasterKey()); err != nil {
		t.Fatal(err)
	}
	pkt, err := a.Send([]byte("after rekey"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(pkt)
	if err != nil || string(got) != "after rekey" {
		t.Fatalf("post-rekey: %v", err)
	}
}

func TestByteLifetime(t *testing.T) {
	a, _, _ := NewPair(SuiteHWAES, NewMasterKey())
	a.Out.SetLifetime(100, 0)
	if _, err := a.Send(make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Send(make([]byte, 60)); !errors.Is(err, ErrExpired) {
		t.Fatalf("byte lifetime not enforced: %v", err)
	}
	// A smaller packet that still fits goes through.
	if _, err := a.Send(make([]byte, 30)); err != nil {
		t.Fatalf("within-budget packet rejected: %v", err)
	}
}

// Property: every payload round-trips across both suites.
func TestQuickRoundTrip(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	f := func(msg []byte) bool {
		pkt, err := a.Send(msg)
		if err != nil {
			return false
		}
		got, err := b.Recv(pkt)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParallelSegmentOrdering proves that parallel sealing assigns
// sequence numbers strictly in stream order: packet i on the wire must
// carry seq first+i exactly as the serial path would emit it.
func TestParallelSegmentOrdering(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	a.SetStreamWorkers(4)
	b.SetStreamWorkers(4)
	stream := make([]byte, 256<<10)
	mrand.New(mrand.NewSource(5)).Read(stream)

	pkts, err := SegmentStream(a, stream, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < streamParallelThreshold {
		t.Fatalf("only %d packets; test did not exercise the parallel path", len(pkts))
	}
	var prev uint64
	for i, p := range pkts {
		seq := binary.BigEndian.Uint64(p[4:12])
		if i == 0 {
			prev = seq
			continue
		}
		if seq != prev+1 {
			t.Fatalf("packet %d has seq %d, want %d (out of order)", i, seq, prev+1)
		}
		prev = seq
	}

	got, err := ReassembleStream(b, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, stream) {
		t.Fatal("parallel segment/reassemble corrupted the stream")
	}
}

// TestParallelReassemblyReplayRejected replays a whole parallel-opened
// stream: the second pass must fail with ErrReplay because the window
// was committed for every packet of the first pass.
func TestParallelReassemblyReplayRejected(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	a.SetStreamWorkers(4)
	b.SetStreamWorkers(4)
	stream := make([]byte, 128<<10)
	pkts, err := SegmentStream(a, stream, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReassembleStream(b, pkts); err != nil {
		t.Fatal(err)
	}
	if _, err := ReassembleStream(b, pkts); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed stream accepted: err=%v", err)
	}
	// A single replayed packet inside an otherwise-fresh stream must
	// also be rejected.
	more, err := SegmentStream(a, stream[:64<<10], 1500)
	if err != nil {
		t.Fatal(err)
	}
	more[len(more)/2] = pkts[0]
	if _, err := ReassembleStream(b, more); !errors.Is(err, ErrReplay) {
		t.Fatalf("stream with one replayed packet accepted: err=%v", err)
	}
}

// TestParallelReassemblyAuthFailure corrupts one packet in a parallel
// batch: reassembly must fail and — because nothing commits on error —
// the intact packets must still be acceptable afterwards.
func TestParallelReassemblyAuthFailure(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	a.SetStreamWorkers(4)
	b.SetStreamWorkers(4)
	stream := make([]byte, 128<<10)
	pkts, err := SegmentStream(a, stream, 1500)
	if err != nil {
		t.Fatal(err)
	}
	evil := append([]byte(nil), pkts[3]...)
	evil[len(evil)-1] ^= 0xFF
	good := pkts[3]
	pkts[3] = evil
	if _, err := ReassembleStream(b, pkts); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered stream accepted: err=%v", err)
	}
	pkts[3] = good
	if _, err := ReassembleStream(b, pkts); err != nil {
		t.Fatalf("intact stream rejected after failed batch: %v", err)
	}
}

// TestSealOpenAppendReuse drives the append APIs with a reused buffer.
func TestSealOpenAppendReuse(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	buf := make([]byte, 0, 4096)
	out := make([]byte, 0, 4096)
	for i := 0; i < 50; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, 100+i)
		pkt, err := a.Out.SealAppend(buf[:0], msg)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := b.In.OpenAppend(out[:0], pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pl, msg) {
			t.Fatalf("iteration %d: payload mismatch", i)
		}
	}
}

// TestConcurrentSeal hammers one SA from many goroutines; under -race
// this proves the scratch-nonce path is properly serialized and every
// packet still decrypts with a unique sequence number.
func TestConcurrentSeal(t *testing.T) {
	a, b := newTunnel(t, SuiteHWAES)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	pkts := make([][][]byte, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p, err := a.Out.Seal([]byte("concurrent"))
				if err == nil {
					pkts[g] = append(pkts[g], p)
				}
			}
		}(g)
	}
	wg.Wait()
	var all [][]byte
	seen := make(map[uint64]bool)
	for _, gp := range pkts {
		for _, p := range gp {
			seq := binary.BigEndian.Uint64(p[4:12])
			if seen[seq] {
				t.Fatalf("sequence %d issued twice", seq)
			}
			seen[seq] = true
			all = append(all, p)
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique packets, want %d", len(seen), goroutines*perG)
	}
	// Open in sequence order (the receiver's replay window is only 64
	// wide, so arbitrary ordering would be legitimately rejected).
	sort.Slice(all, func(i, j int) bool {
		return binary.BigEndian.Uint64(all[i][4:12]) < binary.BigEndian.Uint64(all[j][4:12])
	})
	for _, p := range all {
		if _, err := b.In.Open(p); err != nil {
			t.Fatalf("seq %d failed to open: %v", binary.BigEndian.Uint64(p[4:12]), err)
		}
	}
}
