package softaes

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// FIPS-197 Appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	cases := []struct {
		key, ct string
	}{
		{"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, tc := range cases {
		key, _ := hex.DecodeString(tc.key)
		want, _ := hex.DecodeString(tc.ct)
		c, err := New(key)
		if err != nil {
			t.Fatalf("New(%d-byte key): %v", len(key), err)
		}
		got := make([]byte, 16)
		c.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Errorf("AES-%d encrypt = %x, want %x", len(key)*8, got, want)
		}
		back := make([]byte, 16)
		c.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("AES-%d decrypt round-trip = %x, want %x", len(key)*8, back, pt)
		}
	}
}

func TestInvalidKeySize(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key succeeded, want error", n)
		}
	}
}

// TestMatchesStdlib cross-checks every key size against crypto/aes on
// random inputs; agreement with an independent implementation on random
// blocks is the strongest correctness evidence available.
func TestMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, ks := range []int{16, 24, 32} {
		for i := 0; i < 200; i++ {
			key := make([]byte, ks)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)

			soft, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			hard, err := aes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			a, b := make([]byte, 16), make([]byte, 16)
			soft.Encrypt(a, pt)
			hard.Encrypt(b, pt)
			if !bytes.Equal(a, b) {
				t.Fatalf("key=%x pt=%x: soft=%x hard=%x", key, pt, a, b)
			}
			soft.Decrypt(a, b)
			if !bytes.Equal(a, pt) {
				t.Fatalf("key=%x: decrypt mismatch", key)
			}
		}
	}
}

// TestGCMInterop proves the soft cipher composes with cipher.NewGCM and
// interoperates with GCM over crypto/aes in both directions.
func TestGCMInterop(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	soft, _ := New(key)
	hard, _ := aes.NewCipher(key)
	sg, err := cipher.NewGCM(soft)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := cipher.NewGCM(hard)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, 12)
	msg := []byte("bolted attestation payload")
	ad := []byte("spi=42")

	ct := sg.Seal(nil, nonce, msg, ad)
	pt, err := hg.Open(nil, nonce, ct, ad)
	if err != nil || !bytes.Equal(pt, msg) {
		t.Fatalf("hard could not open soft's seal: %v", err)
	}
	ct2 := hg.Seal(nil, nonce, msg, ad)
	pt2, err := sg.Open(nil, nonce, ct2, ad)
	if err != nil || !bytes.Equal(pt2, msg) {
		t.Fatalf("soft could not open hard's seal: %v", err)
	}
}

// Property: Decrypt(Encrypt(x)) == x for all keys and blocks.
func TestQuickRoundTrip(t *testing.T) {
	f := func(key [32]byte, block [16]byte) bool {
		c, err := New(key[:])
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		pt := make([]byte, 16)
		c.Encrypt(ct, block[:])
		c.Decrypt(pt, ct)
		return bytes.Equal(pt, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: encryption is a permutation (injective on distinct blocks).
func TestQuickInjective(t *testing.T) {
	key := make([]byte, 16)
	c, _ := New(key)
	f := func(a, b [16]byte) bool {
		if a == b {
			return true
		}
		ca, cb := make([]byte, 16), make([]byte, 16)
		c.Encrypt(ca, a[:])
		c.Encrypt(cb, b[:])
		return !bytes.Equal(ca, cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBlocksMatchesStdlib pins the multi-block path against crypto/aes
// for all three key sizes and block counts straddling the 4-wide lane
// boundary (remainders exercise the single-block tail).
func TestBlocksMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ks := range []int{16, 24, 32} {
		for _, blocks := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33} {
			key := make([]byte, ks)
			rng.Read(key)
			src := make([]byte, blocks*BlockSize)
			rng.Read(src)

			soft, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			hard, err := aes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, len(src))
			for off := 0; off < len(src); off += BlockSize {
				hard.Encrypt(want[off:off+BlockSize], src[off:off+BlockSize])
			}
			got := make([]byte, len(src))
			soft.EncryptBlocks(got, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("AES-%d EncryptBlocks(%d blocks) diverges from crypto/aes", ks*8, blocks)
			}
			// In-place decrypt must restore the plaintext.
			soft.DecryptBlocks(got, got)
			if !bytes.Equal(got, src) {
				t.Fatalf("AES-%d DecryptBlocks(%d blocks) round-trip mismatch", ks*8, blocks)
			}
		}
	}
}

func TestBlocksValidation(t *testing.T) {
	c, _ := New(make([]byte, 16))
	for _, fn := range []func(dst, src []byte){c.EncryptBlocks, c.DecryptBlocks} {
		for _, tc := range []struct{ dst, src int }{{16, 0}, {16, 24}, {16, 32}} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("dst=%d src=%d did not panic", tc.dst, tc.src)
					}
				}()
				fn(make([]byte, tc.dst), make([]byte, tc.src))
			}()
		}
	}
}

// FuzzBlocksMatchesStdlib is the differential fuzz harness: any
// key/plaintext pair where the multi-block software path disagrees with
// crypto/aes (AES-NI where available) is a bug in one of them — and
// crypto/aes is FIPS-validated.
func FuzzBlocksMatchesStdlib(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), []byte("one block of pt!"))
	f.Add(bytes.Repeat([]byte{7}, 24), bytes.Repeat([]byte{9}, 5*BlockSize))
	f.Add(bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 8*BlockSize))
	f.Fuzz(func(t *testing.T, key, data []byte) {
		if len(key) != 16 && len(key) != 24 && len(key) != 32 {
			return
		}
		if len(data) == 0 || len(data)%BlockSize != 0 || len(data) > 1<<16 {
			return
		}
		soft, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		hard, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(data))
		for off := 0; off < len(data); off += BlockSize {
			hard.Encrypt(want[off:off+BlockSize], data[off:off+BlockSize])
		}
		got := make([]byte, len(data))
		soft.EncryptBlocks(got, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("EncryptBlocks diverges from crypto/aes (key %x)", key)
		}
		soft.DecryptBlocks(got, got)
		if !bytes.Equal(got, data) {
			t.Fatalf("DecryptBlocks failed to invert (key %x)", key)
		}
	})
}

func TestShortBufferPanics(t *testing.T) {
	c, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("short block did not panic")
		}
	}()
	c.Encrypt(make([]byte, 16), make([]byte, 8))
}

func BenchmarkSoftEncrypt(b *testing.B) {
	c, _ := New(make([]byte, 32))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkSoftEncryptBlocks(b *testing.B) {
	c, _ := New(make([]byte, 32))
	buf := make([]byte, 64*BlockSize)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		c.EncryptBlocks(buf, buf)
	}
}

func BenchmarkStdlibEncrypt(b *testing.B) {
	c, _ := aes.NewCipher(make([]byte, 32))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
