package npb

import (
	"fmt"
	"math"
	"math/rand"
)

// CG — the Conjugate Gradient benchmark: estimate the smallest
// eigenvalue of a sparse symmetric positive-definite matrix with
// inverse power iteration, solving each shifted system by conjugate
// gradients. Rows are partitioned across ranks; every matrix-vector
// product requires the full vector, so each CG iteration performs an
// allgather plus two allreduces — the many-small-messages profile that
// makes CG the worst case under IPsec in Figure 7.

// CGResult is the verified output.
type CGResult struct {
	Eigen      float64 // smallest eigenvalue estimate
	Iterations int     // total CG iterations run
	Residual   float64 // final CG residual norm
	N          int
}

// cgMatrix is a sparse symmetric positive-definite matrix in CSR form,
// built as D + R + R^T with a strong diagonal so CG converges.
type cgMatrix struct {
	n      int
	rowPtr []int
	colIdx []int
	vals   []float64
}

// genCGMatrix deterministically generates the test matrix.
func genCGMatrix(n, nzPerRow int, seed int64) *cgMatrix {
	rng := rand.New(rand.NewSource(seed))
	type entry struct {
		c int
		v float64
	}
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = make(map[int]float64)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < nzPerRow; k++ {
			j := rng.Intn(n)
			v := rng.Float64() - 0.5
			rows[i][j] += v
			rows[j][i] += v // symmetry
		}
		// Diagonal dominance: lambda_min near the smallest diagonal.
		rows[i][i] += float64(nzPerRow)*2 + 1 + float64(i)/float64(n)
	}
	m := &cgMatrix{n: n, rowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		cols := make([]int, 0, len(rows[i]))
		for c := range rows[i] {
			cols = append(cols, c)
		}
		// insertion sort: rows are short
		for a := 1; a < len(cols); a++ {
			for b := a; b > 0 && cols[b] < cols[b-1]; b-- {
				cols[b], cols[b-1] = cols[b-1], cols[b]
			}
		}
		for _, c := range cols {
			m.colIdx = append(m.colIdx, c)
			m.vals = append(m.vals, rows[i][c])
		}
		m.rowPtr[i+1] = len(m.colIdx)
	}
	return m
}

// matvecRows computes y = A x for the row range [lo, hi).
func (m *cgMatrix) matvecRows(x []float64, lo, hi int) []float64 {
	y := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		y[i-lo] = s
	}
	return y
}

// CGConfig sizes a run.
type CGConfig struct {
	N        int // matrix dimension (multiple of world size)
	NonZeros int // off-diagonal entries per row
	CGIters  int // CG iterations per outer step
	Outer    int // inverse-iteration steps
	Seed     int64
}

// DefaultCGConfig returns a small class-S-like configuration.
func DefaultCGConfig() CGConfig {
	return CGConfig{N: 256, NonZeros: 8, CGIters: 25, Outer: 4, Seed: 7}
}

// RunCG executes distributed CG on the world.
func RunCG(w *World, cfg CGConfig) (*CGResult, error) {
	if cfg.N%w.Size() != 0 {
		return nil, fmt.Errorf("npb: CG N=%d not divisible by %d ranks", cfg.N, w.Size())
	}
	m := genCGMatrix(cfg.N, cfg.NonZeros, cfg.Seed)
	rows := cfg.N / w.Size()
	res := &CGResult{N: cfg.N}

	err := w.Run(func(c *Comm) error {
		lo := c.Rank() * rows
		hi := lo + rows

		dot := func(a, b []float64) (float64, error) {
			var s float64
			for i := range a {
				s += a[i] * b[i]
			}
			out, err := c.AllReduceSum([]float64{s})
			if err != nil {
				return 0, err
			}
			return out[0], nil
		}

		// x starts as ones.
		xLocal := make([]float64, rows)
		for i := range xLocal {
			xLocal[i] = 1
		}
		var eigen, resid float64
		iters := 0
		for outer := 0; outer < cfg.Outer; outer++ {
			// Normalize x.
			nx, err := dot(xLocal, xLocal)
			if err != nil {
				return err
			}
			inv := 1 / math.Sqrt(nx)
			for i := range xLocal {
				xLocal[i] *= inv
			}
			// Solve A z = x by CG.
			zLocal := make([]float64, rows)
			rLocal := append([]float64(nil), xLocal...)
			pLocal := append([]float64(nil), xLocal...)
			rho, err := dot(rLocal, rLocal)
			if err != nil {
				return err
			}
			for it := 0; it < cfg.CGIters; it++ {
				iters++
				// The expensive exchange: everyone needs all of p.
				pFull, err := c.AllGatherF64s(pLocal)
				if err != nil {
					return err
				}
				qLocal := m.matvecRows(pFull, lo, hi)
				pq, err := dot(pLocal, qLocal)
				if err != nil {
					return err
				}
				alpha := rho / pq
				for i := range zLocal {
					zLocal[i] += alpha * pLocal[i]
					rLocal[i] -= alpha * qLocal[i]
				}
				rhoNew, err := dot(rLocal, rLocal)
				if err != nil {
					return err
				}
				beta := rhoNew / rho
				rho = rhoNew
				for i := range pLocal {
					pLocal[i] = rLocal[i] + beta*pLocal[i]
				}
			}
			resid = math.Sqrt(rho)
			// Rayleigh-style update: lambda ~ (x.x)/(x.z) for A z = x.
			xz, err := dot(xLocal, zLocal)
			if err != nil {
				return err
			}
			eigen = 1 / xz
			xLocal = zLocal
		}
		if c.Rank() == 0 {
			res.Eigen = eigen
			res.Iterations = iters
			res.Residual = resid
		}
		return c.Barrier()
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// VerifyCG checks convergence: the residual fell far below the initial
// unit norm and the eigenvalue estimate sits inside the matrix's
// Gershgorin-style bounds for the generated diagonal.
func VerifyCG(cfg CGConfig, r *CGResult) error {
	if r.Residual > 1e-6 {
		return fmt.Errorf("npb: CG residual %g did not converge", r.Residual)
	}
	// Diagonal entries are ~2*nz+1..2*nz+2 plus O(1) off-diagonal mass;
	// lambda_min must land in a generous band around that.
	lo := float64(cfg.NonZeros)
	hi := float64(4*cfg.NonZeros + 8)
	if r.Eigen < lo || r.Eigen > hi {
		return fmt.Errorf("npb: CG eigenvalue %g outside plausible band [%g, %g]", r.Eigen, lo, hi)
	}
	return nil
}
