package firmware

import (
	"crypto/sha256"
	"time"

	"bolted/internal/tpm"
)

// Firmware is system firmware installed in SPI flash.
type Firmware interface {
	// Name identifies the firmware type and version.
	Name() string
	// Enter executes the firmware's measured entry path on a machine:
	// extend measurements into PCRPlatform, optionally scrub memory.
	Enter(m *Machine) error
	// POSTTime is the wall-clock power-on self test duration, consumed
	// by the provisioning simulation.
	POSTTime() time.Duration
	// Measurements returns the ordered digests Enter extends into
	// PCRPlatform — the provider-published platform whitelist entries.
	Measurements() []tpm.Digest
	// Deterministic reports whether a tenant can rebuild the firmware
	// from source and independently predict Measurements.
	Deterministic() bool
}

// Paper-calibrated POST durations (§5: "significantly faster to POST
// than UEFI; taking 40 seconds on our servers, compared to about 4
// minutes with UEFI").
const (
	UEFIPOSTTime      = 240 * time.Second
	LinuxBootPOSTTime = 40 * time.Second
)

// peiDigest is the retained vendor PEI + Intel ACM measurement that
// both firmware types extend first (the paper's LinuxBoot retains the
// vendor PEI and signed ACM). The provider publishes this one-time
// measurement per platform generation.
func peiDigest(platformGen string) tpm.Digest {
	return sha256.Sum256([]byte("vendor-pei-acm|" + platformGen))
}

// UEFI is the stock vendor firmware: a closed binary blob, measured but
// not reproducible by the tenant.
type UEFI struct {
	Vendor      string
	Version     string
	PlatformGen string
	blobDigest  tpm.Digest
}

// NewUEFI creates vendor firmware whose DXE blob digest is derived from
// an opaque vendor build — the tenant cannot recompute it from source.
func NewUEFI(vendor, version, platformGen string) *UEFI {
	return &UEFI{
		Vendor:      vendor,
		Version:     version,
		PlatformGen: platformGen,
		blobDigest:  sha256.Sum256([]byte("opaque-vendor-blob|" + vendor + "|" + version)),
	}
}

// Name implements Firmware.
func (u *UEFI) Name() string { return "uefi-" + u.Vendor + "-" + u.Version }

// POSTTime implements Firmware.
func (u *UEFI) POSTTime() time.Duration { return UEFIPOSTTime }

// Deterministic implements Firmware: vendor UEFI is not reproducible.
func (u *UEFI) Deterministic() bool { return false }

// Measurements implements Firmware.
func (u *UEFI) Measurements() []tpm.Digest {
	return []tpm.Digest{peiDigest(u.PlatformGen), u.blobDigest}
}

// Enter implements Firmware: measure PEI/ACM then the DXE blob. Stock
// UEFI does NOT scrub memory — the previous occupant's DRAM survives.
func (u *UEFI) Enter(m *Machine) error {
	if err := m.TPM().Extend(PCRPlatform, peiDigest(u.PlatformGen), "pei-acm"); err != nil {
		return err
	}
	return m.TPM().Extend(PCRPlatform, u.blobDigest, "uefi-dxe:"+u.Name())
}

// LinuxBootImage is a deterministic build artifact: hash is a pure
// function of the source tree, so anyone holding the source produces an
// identical image.
type LinuxBootImage struct {
	SourceID string
	Digest   tpm.Digest
	Size     int64
}

// BuildLinuxBoot compiles a LinuxBoot (Heads) image from source. The
// build is reproducible: equal source always yields an equal digest,
// which is what lets a tenant validate provider-installed firmware.
func BuildLinuxBoot(sourceID string, source []byte) LinuxBootImage {
	h := sha256.New()
	h.Write([]byte("linuxboot-reproducible-build\x00"))
	h.Write(source)
	var d tpm.Digest
	copy(d[:], h.Sum(nil))
	return LinuxBootImage{
		SourceID: sourceID,
		Digest:   d,
		Size:     56 << 20, // ~56 MiB Heads runtime (kernel+initrd)
	}
}

// LinuxBoot is the Bolted firmware: open source, reproducibly built,
// memory-scrubbing, kexec-capable.
type LinuxBoot struct {
	Image       LinuxBootImage
	PlatformGen string
}

// NewLinuxBoot creates flash-installed LinuxBoot from a built image.
func NewLinuxBoot(img LinuxBootImage, platformGen string) *LinuxBoot {
	return &LinuxBoot{Image: img, PlatformGen: platformGen}
}

// Name implements Firmware.
func (l *LinuxBoot) Name() string { return "linuxboot-" + l.Image.SourceID }

// POSTTime implements Firmware.
func (l *LinuxBoot) POSTTime() time.Duration { return LinuxBootPOSTTime }

// Deterministic implements Firmware.
func (l *LinuxBoot) Deterministic() bool { return true }

// Measurements implements Firmware.
func (l *LinuxBoot) Measurements() []tpm.Digest {
	return []tpm.Digest{peiDigest(l.PlatformGen), l.Image.Digest}
}

// Enter implements Firmware: measure PEI/ACM and the LinuxBoot image,
// then scrub DRAM. The scrub-before-anything-else ordering is the
// after-occupancy guarantee: any path that regains control of the
// machine runs this code first (the only way in is a power cycle, which
// re-enters flash).
func (l *LinuxBoot) Enter(m *Machine) error {
	if err := m.TPM().Extend(PCRPlatform, peiDigest(l.PlatformGen), "pei-acm"); err != nil {
		return err
	}
	if err := m.TPM().Extend(PCRPlatform, l.Image.Digest, "linuxboot:"+l.Image.SourceID); err != nil {
		return err
	}
	m.Memory().Scrub()
	return nil
}
