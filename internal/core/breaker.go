package core

import (
	"context"
	"crypto/ecdh"
	"crypto/ecdsa"
	"errors"
	"fmt"
	"sync"
	"time"

	"bolted/internal/bmi"
	"bolted/internal/ima"
	"bolted/internal/keylime"
	"bolted/internal/tpm"
)

// This file is the degraded-mode machinery: a per-backend circuit
// breaker over each of the four services, tripped by sustained
// transient failures and healed by a successful half-open probe. While
// any breaker is open the cloud is explicitly degraded: new
// acquisitions fail fast with ErrDegraded instead of queueing into a
// dead backend, warm refill suspends, and the guard pauses its rounds
// rather than revoking a healthy enclave it merely cannot reach.

// ErrDegraded rejects work while a backend circuit breaker is open.
// The /v1 surface maps it to HTTP 503 with a Retry-After hint.
var ErrDegraded = errors.New("core: service degraded")

// DegradedError is an ErrDegraded with context: which backend, and
// when the breaker will admit a probe. errors.Is(err, ErrDegraded)
// matches.
type DegradedError struct {
	Backend    string
	RetryAfter time.Duration
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("core: service degraded: %s circuit breaker open", e.Backend)
}

// Is makes errors.Is(err, ErrDegraded) true for every DegradedError.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// Backend names used by breakers, health reporting and metrics.
const (
	BackendHIL       = "hil"
	BackendBMI       = "bmi"
	BackendDriver    = "driver"
	BackendRegistrar = "registrar"
)

// ResilientBackends lists the wrapped backends in display order.
var ResilientBackends = []string{BackendHIL, BackendBMI, BackendDriver, BackendRegistrar}

// BreakerState is a circuit breaker's position.
type BreakerState string

// Breaker states.
const (
	// BreakerClosed: healthy; calls flow.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: tripped; calls fail fast with ErrDegraded until the
	// cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: cooldown elapsed; one probe call is admitted.
	// Success closes the breaker, failure reopens it.
	BreakerHalfOpen BreakerState = "half-open"
)

// BackendHealth is one backend's breaker snapshot, the /v1/health wire
// form.
type BackendHealth struct {
	State    BreakerState `json:"state"`
	Failures int          `json:"consecutive_failures,omitempty"`
	Trips    uint64       `json:"trips,omitempty"`
}

// HealthStatus is the cloud's degraded-mode view: degraded while any
// backend breaker is open.
type HealthStatus struct {
	Degraded bool                     `json:"degraded"`
	Backends map[string]BackendHealth `json:"backends,omitempty"`
}

// BackendOpen reports whether one backend's breaker is open (the guard
// gates its rounds on the registrar's).
func (h HealthStatus) BackendOpen(backend string) bool {
	return h.Backends[backend].State == BreakerOpen
}

// breaker is one backend's circuit breaker: closed until threshold
// consecutive transient failures, then open for cooldown, then
// half-open admitting a single probe whose outcome closes or reopens
// it. Metrics are read through the cloud so a later SetMetrics is
// picked up live.
type breaker struct {
	cloud     *Cloud
	backend   string
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time // zero = closed
	probing   bool      // half-open probe in flight
	trips     uint64
}

// allow reports whether a call may proceed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if time.Now().Before(b.openUntil) {
		return false
	}
	// Cooldown elapsed: half-open. Admit exactly one probe at a time.
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	wasOpen := !b.openUntil.IsZero()
	b.fails = 0
	b.openUntil = time.Time{}
	b.probing = false
	b.mu.Unlock()
	if wasOpen {
		b.cloud.metrics.setBreakerState(b.backend, BreakerClosed)
	}
}

// failure records one transient failure; threshold consecutive ones
// (or a failed half-open probe) trip the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openUntil.IsZero() {
		// Open or half-open. A failed probe — or a straggler call that
		// was admitted before the trip — re-arms the cooldown.
		if b.probing || !time.Now().Before(b.openUntil) {
			b.tripLocked()
		}
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.tripLocked()
	}
}

// tripLocked opens the breaker. Callers hold b.mu.
func (b *breaker) tripLocked() {
	b.openUntil = time.Now().Add(b.cooldown)
	b.probing = false
	b.fails = 0
	b.trips++
	b.cloud.metrics.incBreakerTrip(b.backend)
	b.cloud.metrics.setBreakerState(b.backend, BreakerOpen)
}

// status snapshots the breaker for health reporting.
func (b *breaker) status() BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BackendHealth{State: BreakerClosed, Failures: b.fails, Trips: b.trips}
	if !b.openUntil.IsZero() {
		if time.Now().Before(b.openUntil) {
			st.State = BreakerOpen
		} else {
			st.State = BreakerHalfOpen
		}
	}
	return st
}

// open reports whether the breaker is currently open (not half-open).
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && time.Now().Before(b.openUntil)
}

// cloudResilience is the cloud's installed resilience layer.
type cloudResilience struct {
	policy   ResiliencePolicy
	breakers map[string]*breaker
}

// EnableResilience installs the resilience layer: the four backends
// are wrapped with retrying, breaker-guarded decorators under the
// given policy (zero fields take DefaultResiliencePolicy values).
// Install it AFTER any fault-injection wrapper — breakers and retries
// must observe the faults — and after SetMetrics if instruments should
// be live from the first call (a later SetMetrics is still picked up).
// Calling it again only updates the policy; the backends are not
// re-wrapped.
func (c *Cloud) EnableResilience(pol ResiliencePolicy) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	pol = pol.withDefaults()
	if c.resilience != nil {
		c.resilience.policy = pol
		for _, b := range c.resilience.breakers {
			b.threshold = pol.BreakerThreshold
			b.cooldown = pol.BreakerCooldown
		}
		return nil
	}
	r := &cloudResilience{policy: pol, breakers: make(map[string]*breaker, len(ResilientBackends))}
	for _, backend := range ResilientBackends {
		r.breakers[backend] = &breaker{
			cloud:     c,
			backend:   backend,
			threshold: pol.BreakerThreshold,
			cooldown:  pol.BreakerCooldown,
		}
	}
	c.resilience = r
	c.HIL = &resilientHIL{c: c, inner: c.HIL}
	c.BMI = &resilientBMI{c: c, inner: c.BMI}
	c.Driver = &resilientDriver{c: c, inner: c.Driver}
	c.Registrar = &resilientRegistrar{c: c, inner: c.Registrar}
	return nil
}

// Resilience returns the installed policy (the defaults-normalized
// zero value when EnableResilience was never called).
func (c *Cloud) Resilience() ResiliencePolicy {
	if c.resilience == nil {
		return ResiliencePolicy{}.withDefaults()
	}
	return c.resilience.policy
}

// Health snapshots the cloud's degraded-mode state. Without
// EnableResilience the cloud has no breakers and is never degraded.
func (c *Cloud) Health() HealthStatus {
	h := HealthStatus{Backends: make(map[string]BackendHealth, len(ResilientBackends))}
	if c.resilience == nil {
		for _, backend := range ResilientBackends {
			h.Backends[backend] = BackendHealth{State: BreakerClosed}
		}
		return h
	}
	for backend, b := range c.resilience.breakers {
		st := b.status()
		h.Backends[backend] = st
		if st.State == BreakerOpen {
			h.Degraded = true
		}
	}
	return h
}

// CheckDegraded returns a typed *DegradedError naming an open backend
// while the cloud is degraded, nil otherwise. Admission gates call it
// to fail new work fast instead of queueing it into a dead backend;
// once the breaker's cooldown elapses (half-open) it returns nil again,
// so the first post-cooldown acquire doubles as the probe traffic.
func (c *Cloud) CheckDegraded() error {
	if c.resilience == nil {
		return nil
	}
	for _, backend := range ResilientBackends {
		if c.resilience.breakers[backend].open() {
			return &DegradedError{Backend: backend, RetryAfter: c.resilience.policy.BreakerCooldown}
		}
	}
	return nil
}

// Degraded reports whether any backend breaker is currently open.
func (c *Cloud) Degraded() bool {
	if c.resilience == nil {
		return false
	}
	for _, b := range c.resilience.breakers {
		if b.open() {
			return true
		}
	}
	return false
}

// --- resilient decorators -----------------------------------------
//
// One thin decorator per backend interface: every call runs through
// Cloud.resilientCall (breaker admission, bounded transient retries).
// Methods without a context use Background — their retries are bounded
// by the attempt budget alone.

type resilientHIL struct {
	c     *Cloud
	inner HILService
}

func (r *resilientHIL) CreateProject(name string) error {
	return r.c.resilientCall(context.Background(), BackendHIL, func() error { return r.inner.CreateProject(name) })
}

func (r *resilientHIL) DeleteProject(name string) error {
	return r.c.resilientCall(context.Background(), BackendHIL, func() error { return r.inner.DeleteProject(name) })
}

func (r *resilientHIL) FreeNodes() (out []string, err error) {
	err = r.c.resilientCall(context.Background(), BackendHIL, func() error { out, err = r.inner.FreeNodes(); return err })
	return out, err
}

func (r *resilientHIL) AllocateNode(ctx context.Context, project, node string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.AllocateNode(ctx, project, node) })
}

func (r *resilientHIL) AllocateAnyNode(ctx context.Context, project string) (out string, err error) {
	err = r.c.resilientCall(ctx, BackendHIL, func() error { out, err = r.inner.AllocateAnyNode(ctx, project); return err })
	return out, err
}

func (r *resilientHIL) TransferNode(ctx context.Context, from, node, to string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.TransferNode(ctx, from, node, to) })
}

func (r *resilientHIL) FreeNode(ctx context.Context, project, node string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.FreeNode(ctx, project, node) })
}

func (r *resilientHIL) CreateNetwork(ctx context.Context, project, name string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.CreateNetwork(ctx, project, name) })
}

func (r *resilientHIL) DeleteNetwork(ctx context.Context, project, name string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.DeleteNetwork(ctx, project, name) })
}

func (r *resilientHIL) ConnectNode(ctx context.Context, project, node, network string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.ConnectNode(ctx, project, node, network) })
}

func (r *resilientHIL) DetachNode(ctx context.Context, project, node, network string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.DetachNode(ctx, project, node, network) })
}

func (r *resilientHIL) ConnectServicePort(port, publicNet string) error {
	return r.c.resilientCall(context.Background(), BackendHIL, func() error { return r.inner.ConnectServicePort(port, publicNet) })
}

func (r *resilientHIL) PowerOn(ctx context.Context, project, node string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.PowerOn(ctx, project, node) })
}

func (r *resilientHIL) PowerOff(ctx context.Context, project, node string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.PowerOff(ctx, project, node) })
}

func (r *resilientHIL) PowerCycle(ctx context.Context, project, node string) error {
	return r.c.resilientCall(ctx, BackendHIL, func() error { return r.inner.PowerCycle(ctx, project, node) })
}

func (r *resilientHIL) NodeMetadata(node string) (out map[string]string, err error) {
	err = r.c.resilientCall(context.Background(), BackendHIL, func() error { out, err = r.inner.NodeMetadata(node); return err })
	return out, err
}

func (r *resilientHIL) NodeOwner(node string) (out string, err error) {
	err = r.c.resilientCall(context.Background(), BackendHIL, func() error { out, err = r.inner.NodeOwner(node); return err })
	return out, err
}

func (r *resilientHIL) NodePort(node string) (out string, err error) {
	err = r.c.resilientCall(context.Background(), BackendHIL, func() error { out, err = r.inner.NodePort(node); return err })
	return out, err
}

type resilientBMI struct {
	c     *Cloud
	inner BMIService
}

func (r *resilientBMI) CreateImage(ctx context.Context, name string, size int64) (out *bmi.Image, err error) {
	err = r.c.resilientCall(ctx, BackendBMI, func() error { out, err = r.inner.CreateImage(ctx, name, size); return err })
	return out, err
}

func (r *resilientBMI) CreateOSImage(name string, spec bmi.OSImageSpec) (out *bmi.Image, err error) {
	err = r.c.resilientCall(context.Background(), BackendBMI, func() error { out, err = r.inner.CreateOSImage(name, spec); return err })
	return out, err
}

func (r *resilientBMI) CloneImage(ctx context.Context, src, dst string) (out *bmi.Image, err error) {
	err = r.c.resilientCall(ctx, BackendBMI, func() error { out, err = r.inner.CloneImage(ctx, src, dst); return err })
	return out, err
}

func (r *resilientBMI) SnapshotImage(ctx context.Context, src, snap string) (out *bmi.Image, err error) {
	err = r.c.resilientCall(ctx, BackendBMI, func() error { out, err = r.inner.SnapshotImage(ctx, src, snap); return err })
	return out, err
}

func (r *resilientBMI) DeleteImage(ctx context.Context, name string) error {
	return r.c.resilientCall(ctx, BackendBMI, func() error { return r.inner.DeleteImage(ctx, name) })
}

func (r *resilientBMI) GetImage(name string) (out *bmi.Image, err error) {
	err = r.c.resilientCall(context.Background(), BackendBMI, func() error { out, err = r.inner.GetImage(name); return err })
	return out, err
}

func (r *resilientBMI) ListImages() (out []string, err error) {
	err = r.c.resilientCall(context.Background(), BackendBMI, func() error { out, err = r.inner.ListImages(); return err })
	return out, err
}

func (r *resilientBMI) ExtractBootInfo(ctx context.Context, image string) (out *bmi.BootInfo, err error) {
	err = r.c.resilientCall(ctx, BackendBMI, func() error { out, err = r.inner.ExtractBootInfo(ctx, image); return err })
	return out, err
}

func (r *resilientBMI) ExportForBoot(ctx context.Context, node, image string, cow bool) (out *bmi.Export, err error) {
	err = r.c.resilientCall(ctx, BackendBMI, func() error { out, err = r.inner.ExportForBoot(ctx, node, image, cow); return err })
	return out, err
}

func (r *resilientBMI) Unexport(ctx context.Context, node, saveAs string) error {
	return r.c.resilientCall(ctx, BackendBMI, func() error { return r.inner.Unexport(ctx, node, saveAs) })
}

type resilientDriver struct {
	c     *Cloud
	inner NodeDriver
}

func (r *resilientDriver) Boot(ctx context.Context, node string) (out keylime.AgentConn, err error) {
	err = r.c.resilientCall(ctx, BackendDriver, func() error { out, err = r.inner.Boot(ctx, node); return err })
	return out, err
}

func (r *resilientDriver) ExpectedBootPCRs(ctx context.Context, node string) (out map[int][]tpm.Digest, err error) {
	err = r.c.resilientCall(ctx, BackendDriver, func() error { out, err = r.inner.ExpectedBootPCRs(ctx, node); return err })
	return out, err
}

func (r *resilientDriver) KexecAttested(ctx context.Context, node, kernelID string) error {
	return r.c.resilientCall(ctx, BackendDriver, func() error { return r.inner.KexecAttested(ctx, node, kernelID) })
}

func (r *resilientDriver) Kexec(ctx context.Context, node, kernelID string, kernel, initrd []byte) error {
	return r.c.resilientCall(ctx, BackendDriver, func() error { return r.inner.Kexec(ctx, node, kernelID, kernel, initrd) })
}

func (r *resilientDriver) StartIMA(ctx context.Context, node string) (out *ima.Collector, err error) {
	err = r.c.resilientCall(ctx, BackendDriver, func() error { out, err = r.inner.StartIMA(ctx, node); return err })
	return out, err
}

func (r *resilientDriver) StopAgent(ctx context.Context, node string) error {
	return r.c.resilientCall(ctx, BackendDriver, func() error { return r.inner.StopAgent(ctx, node) })
}

func (r *resilientDriver) AddServicePort(ctx context.Context, name string) error {
	return r.c.resilientCall(ctx, BackendDriver, func() error { return r.inner.AddServicePort(ctx, name) })
}

func (r *resilientDriver) Reachable(ctx context.Context, portA, portB string) error {
	return r.c.resilientCall(ctx, BackendDriver, func() error { return r.inner.Reachable(ctx, portA, portB) })
}

type resilientRegistrar struct {
	c     *Cloud
	inner keylime.RegistrarConn
}

func (r *resilientRegistrar) Register(uuid string, ekPub *ecdh.PublicKey, aikPub *ecdsa.PublicKey) (out *tpm.CredentialBlob, err error) {
	err = r.c.resilientCall(context.Background(), BackendRegistrar, func() error { out, err = r.inner.Register(uuid, ekPub, aikPub); return err })
	return out, err
}

func (r *resilientRegistrar) Activate(uuid string, proof []byte) error {
	return r.c.resilientCall(context.Background(), BackendRegistrar, func() error { return r.inner.Activate(uuid, proof) })
}

func (r *resilientRegistrar) AIK(uuid string) (out *ecdsa.PublicKey, err error) {
	err = r.c.resilientCall(context.Background(), BackendRegistrar, func() error { out, err = r.inner.AIK(uuid); return err })
	return out, err
}

func (r *resilientRegistrar) EK(uuid string) (out *ecdh.PublicKey, err error) {
	err = r.c.resilientCall(context.Background(), BackendRegistrar, func() error { out, err = r.inner.EK(uuid); return err })
	return out, err
}

var (
	_ HILService            = (*resilientHIL)(nil)
	_ BMIService            = (*resilientBMI)(nil)
	_ NodeDriver            = (*resilientDriver)(nil)
	_ keylime.RegistrarConn = (*resilientRegistrar)(nil)
)
