package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mustAppend(t *testing.T, s Store, kind Kind, payload string) {
	t.Helper()
	if err := s.Append(Record{Kind: kind, At: time.Now(), Data: json.RawMessage(payload)}); err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, s, KindJournalEvent, fmt.Sprintf(`{"i":%d}`, i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	snap, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if snap != nil {
		t.Fatalf("unexpected snapshot before any compact")
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.Kind != KindJournalEvent || string(r.Data) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}

	// Appends after a reopen extend the same log.
	mustAppend(t, s2, KindQuotaSet, `{"i":5}`)
	_, recs, err = s2.Load()
	if err != nil {
		t.Fatalf("load after append: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records after append, want 6", len(recs))
	}
}

func TestFileTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, s, KindJournalEvent, `{"i":0}`)
	mustAppend(t, s, KindJournalEvent, `{"i":1}`)
	s.Close()

	// Simulate a crash mid-append: chop bytes off the final frame.
	wal := filepath.Join(dir, "wal.log")
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(wal, info.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 1 || string(recs[0].Data) != `{"i":0}` {
		t.Fatalf("want only the first record to survive, got %d: %+v", len(recs), recs)
	}
	// The torn bytes must be gone so the next append starts a clean frame.
	mustAppend(t, s2, KindJournalEvent, `{"i":2}`)
	_, recs, _ = s2.Load()
	if len(recs) != 2 || string(recs[1].Data) != `{"i":2}` {
		t.Fatalf("append after truncation broken: %+v", recs)
	}
}

func TestFileBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, s, KindJournalEvent, `{"i":0}`)
	mustAppend(t, s, KindJournalEvent, `{"i":1}`)
	mustAppend(t, s, KindJournalEvent, `{"i":2}`)
	s.Close()

	// Flip one payload bit inside the second frame. CRC must reject it and
	// everything after it — bytes past a corrupt frame are untrusted.
	wal := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	frame0 := 8 + int(uint32(raw[0])|uint32(raw[1])<<8|uint32(raw[2])<<16|uint32(raw[3])<<24)
	raw[frame0+8+4] ^= 0x40
	if err := os.WriteFile(wal, raw, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after bit flip: %v", err)
	}
	defer s2.Close()
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 1 || string(recs[0].Data) != `{"i":0}` {
		t.Fatalf("want truncation to last valid frame, got %d records: %+v", len(recs), recs)
	}
}

func TestFileCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	mustAppend(t, s, KindJournalEvent, `{"i":0}`)
	if err := s.Compact(&Snapshot{Taken: time.Now(), State: json.RawMessage(`{"v":1}`)}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	mustAppend(t, s, KindJournalEvent, `{"i":1}`)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	snap, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if snap == nil || string(snap.State) != `{"v":1}` {
		t.Fatalf("snapshot not restored: %+v", snap)
	}
	if len(recs) != 1 || string(recs[0].Data) != `{"i":1}` {
		t.Fatalf("want only post-snapshot records, got %+v", recs)
	}
}

func TestFileConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustAppend(t, s, KindJournalEvent, fmt.Sprintf(`{"g":%d}`, i))
		}(i)
	}
	wg.Wait()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
}

func TestFaultyFailsAfter(t *testing.T) {
	f := NewFaulty(NewMemory())
	f.FailAppendsAfter(2, nil)
	mustAppend(t, f, KindJournalEvent, `{}`)
	mustAppend(t, f, KindJournalEvent, `{}`)
	err := f.Append(Record{Kind: KindJournalEvent, Data: json.RawMessage(`{}`)})
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	_, recs, _ := f.Load()
	if len(recs) != 2 {
		t.Fatalf("failed append leaked into log: %d records", len(recs))
	}
	f.Heal()
	mustAppend(t, f, KindJournalEvent, `{}`)
	if got := f.Appends(); got != 4 {
		t.Fatalf("append count = %d, want 4", got)
	}
}

func TestMemoryCompactAndClose(t *testing.T) {
	m := NewMemory()
	mustAppend(t, m, KindJournalEvent, `{"i":0}`)
	if err := m.Compact(&Snapshot{State: json.RawMessage(`{"v":2}`)}); err != nil {
		t.Fatalf("compact: %v", err)
	}
	snap, recs, err := m.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if snap == nil || string(snap.State) != `{"v":2}` || len(recs) != 0 {
		t.Fatalf("compact semantics broken: snap=%+v recs=%+v", snap, recs)
	}
	m.Close()
	if err := m.Append(Record{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

// TestFileAppendBuffered covers the write/flush split: buffered records
// keep log order against durable appends, land on disk for recovery, and
// both a durable Append and an explicit Sync act as their commit point.
func TestFileAppendBuffered(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.AppendBuffered(Record{Kind: KindJournalEvent, At: time.Now(), Data: json.RawMessage(`{"i":0}`)}); err != nil {
		t.Fatalf("buffered append: %v", err)
	}
	// A durable Append after a buffered one commits both (one fsync
	// covers every frame written before it).
	mustAppend(t, s, KindOpFinished, `{"i":1}`)
	if err := s.AppendBuffered(Record{Kind: KindJournalEvent, At: time.Now(), Data: json.RawMessage(`{"i":2}`)}); err != nil {
		t.Fatalf("buffered append: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// Crash (no Close): reopen must replay all three, in order.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if string(r.Data) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("record %d out of order: %s", i, r.Data)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed store: %v, want ErrClosed", err)
	}
}

// TestFaultyBuffered proves the injected fault charges buffered appends
// exactly like durable ones.
func TestFaultyBuffered(t *testing.T) {
	f := NewFaulty(NewMemory())
	f.FailAppendsAfter(1, nil)
	if err := f.AppendBuffered(Record{Kind: KindJournalEvent}); err != nil {
		t.Fatalf("first buffered append: %v", err)
	}
	if err := f.AppendBuffered(Record{Kind: KindJournalEvent}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second buffered append: %v, want ErrNoSpace", err)
	}
	if err := f.Append(Record{Kind: KindOpFinished}); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append after fault: %v, want ErrNoSpace", err)
	}
	if got := f.Appends(); got != 3 {
		t.Fatalf("Appends() = %d, want 3", got)
	}
	f.Heal()
	if err := f.Append(Record{Kind: KindOpFinished}); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
}

// TestFaultySyncGroupCommit composes the fault wrapper with the real
// file store's group-commit path: records stage cleanly through
// AppendBuffered, the armed fault refuses durability at the Sync
// barrier, and after Heal a clean Sync commits the whole batch — the
// staged records survive a crash-reopen.
func TestFaultySyncGroupCommit(t *testing.T) {
	dir := t.TempDir()
	inner, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	f := NewFaulty(inner)
	f.FailSyncsAfter(0, nil)
	for i := 0; i < 3; i++ {
		if err := f.AppendBuffered(Record{Kind: KindJournalEvent, At: time.Now(),
			Data: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))}); err != nil {
			t.Fatalf("buffered append %d: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("sync under fault: %v, want ErrNoSpace", err)
	}
	f.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	if got := f.Syncs(); got != 2 {
		t.Fatalf("Syncs() = %d, want 2", got)
	}
	// Crash (no Close): the healed group commit must have made every
	// staged record durable.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	_, recs, err := s2.Load()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records after reopen, want 3", len(recs))
	}
}
