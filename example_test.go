package bolted_test

import (
	"context"
	"fmt"
	"log"

	"bolted"
)

// ExampleNewEnclave shows the complete attested-boot lifecycle through
// the public API.
func ExampleNewEnclave() {
	cfg := bolted.DefaultConfig()
	cfg.Nodes = 1
	cloud, err := bolted.NewCloud(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cloud.BMI.CreateOSImage("os", bolted.OSImageSpec{
		KernelID: "linux-4.17",
		Kernel:   []byte("vmlinuz"),
		Initrd:   []byte("initrd"),
	}); err != nil {
		log.Fatal(err)
	}

	enclave, err := bolted.NewEnclave(cloud, "demo", bolted.ProfileBob)
	if err != nil {
		log.Fatal(err)
	}
	node, err := enclave.AcquireNode(context.Background(), "os")
	if err != nil {
		log.Fatal(err)
	}
	status, _ := enclave.Verifier().Status(node.Name)
	fmt.Println(node.Name, status, node.Machine.KernelID())
	// Output: node00 verified linux-4.17
}

// ExampleSimulateProvisioning regenerates one Figure-4 bar.
func ExampleSimulateProvisioning() {
	cfg := bolted.DefaultProvisionConfig()
	cfg.Firmware = bolted.FirmwareLinuxBoot
	cfg.Security = bolted.SecAttested
	r := bolted.SimulateProvisioning(cfg)
	fmt.Println(r.Makespan.Round(1e9))
	// Output: 2m54s
}

// ExampleApp_Degradation evaluates the Figure-7 model for one cell.
func ExampleApp_Degradation() {
	for _, app := range bolted.Figure7Apps {
		if app.Name == "TeraSort" {
			d := app.Degradation(bolted.SecConfig{LUKS: true, IPsec: true})
			fmt.Printf("TeraSort under LUKS+IPsec: %.0f%% slower\n", d*100)
		}
	}
	// Output: TeraSort under LUKS+IPsec: 31% slower
}
