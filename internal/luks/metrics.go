package luks

import (
	"sync/atomic"

	"bolted/internal/obs"
)

// sealMetrics are the package-wide data-plane instruments. Volumes are
// created and destroyed constantly (one per node disk), so the
// instruments live at package level rather than per volume; the enclave
// label would be pure cardinality with no extra signal — every volume
// runs the same XTS path.
type sealMetrics struct {
	sealedBytes   *obs.Counter   // plaintext bytes through EncryptSectors
	unsealedBytes *obs.Counter   // ciphertext bytes through DecryptSectors
	batchSectors  *obs.Histogram // sectors per cryptSpan call
}

var zeroSealMetrics sealMetrics

var sealM atomic.Pointer[sealMetrics]

// SetMetrics attaches the package's sealing instruments to a registry.
// Safe to call at any time (the swap is atomic), but counters only cover
// traffic after the call.
func SetMetrics(reg *obs.Registry) {
	sealM.Store(&sealMetrics{
		sealedBytes: reg.Counter("bolted_luks_sealed_bytes_total",
			"Plaintext bytes sealed (encrypted) through the XTS data plane."),
		unsealedBytes: reg.Counter("bolted_luks_unsealed_bytes_total",
			"Ciphertext bytes unsealed (decrypted) through the XTS data plane."),
		batchSectors: reg.Histogram("bolted_luks_batch_sectors",
			"Sectors per sealing span (the unit sharded across XTS workers).",
			obs.DefCountBuckets),
	})
}

func sealMetricsNow() *sealMetrics {
	if p := sealM.Load(); p != nil {
		return p
	}
	return &zeroSealMetrics
}
